(* speedscope (https://www.speedscope.app) file export + validation.

   Hand-rolled like chrome.ml — no JSON library in the container.  We
   emit the "evented" profile type: one profile per simulated CPU
   track, a shared frame table, and balanced O/C (open/close) events
   at non-decreasing virtual-cycle offsets, straight from the
   profiler's per-CPU streams.  The validator re-reads all of that
   and is what `profile --speedscope` and the tests run. *)

let schema_url = "https://www.speedscope.app/file-format-schema.json"

let to_json ?(name = "interweave trace") (p : Profile.t) =
  (* Shared frame table: every label appearing in any stream. *)
  let frame_ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let frames = ref [] in
  let id_of label =
    match Hashtbl.find_opt frame_ids label with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frame_ids in
        Hashtbl.add frame_ids label i;
        frames := label :: !frames;
        i
  in
  List.iter
    (fun (_, evs) ->
      List.iter (fun (e : Profile.stream_ev) -> ignore (id_of e.s_frame)) evs)
    p.Profile.streams;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"$schema\":\"";
  Buffer.add_string b schema_url;
  Buffer.add_string b "\",\n\"shared\":{\"frames\":[";
  List.iteri
    (fun i label ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n {\"name\":\"";
      Json.escape b label;
      Buffer.add_string b "\"}")
    (List.rev !frames);
  Buffer.add_string b "]},\n\"profiles\":[";
  List.iteri
    (fun i (cpu, evs) ->
      if i > 0 then Buffer.add_char b ',';
      let start_v =
        match evs with (e : Profile.stream_ev) :: _ -> e.s_at | [] -> 0
      in
      let end_v =
        List.fold_left
          (fun acc (e : Profile.stream_ev) -> max acc e.s_at)
          start_v evs
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n {\"type\":\"evented\",\"name\":\"%s\",\"unit\":\"none\",\
            \"startValue\":%d,\"endValue\":%d,\"events\":["
           (Profile.cpu_label cpu) start_v end_v);
      List.iteri
        (fun j (e : Profile.stream_ev) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\n  {\"type\":\"%s\",\"frame\":%d,\"at\":%d}"
               (if e.s_open then "O" else "C")
               (Hashtbl.find frame_ids e.s_frame)
               e.s_at))
        evs;
      Buffer.add_string b "]}")
    p.Profile.streams;
  Buffer.add_string b "],\n\"name\":\"";
  Json.escape b name;
  Buffer.add_string b "\",\"activeProfileIndex\":0,\"exporter\":\"interweave\"}\n";
  Buffer.contents b

let write_file ?name (p : Profile.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?name p))

(* Validate an exported file: parses; has a shared frame table of
   named frames; every profile is evented with in-range frame indices,
   non-decreasing [at], a balanced O/C stack (each close matches the
   open on top), and start/end values bracketing the events.  Returns
   the number of O/C events checked. *)
let validate (s : string) : (int, string) result =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  match Json.parse s with
  | exception Json.Bad msg -> Error ("JSON parse error: " ^ msg)
  | json ->
      let* nframes =
        match Json.member "shared" json with
        | Some shared -> (
            match Json.member "frames" shared with
            | Some (Arr frames) ->
                let ok =
                  List.for_all
                    (fun f ->
                      match Json.member "name" f with
                      | Some (Str _) -> true
                      | _ -> false)
                    frames
                in
                if ok then Ok (List.length frames)
                else Error "frame without a string name"
            | _ -> Error "missing shared.frames array")
        | None -> Error "missing shared object"
      in
      let* profiles =
        match Json.member "profiles" json with
        | Some (Arr ps) -> Ok ps
        | _ -> Error "missing profiles array"
      in
      let checked = ref 0 in
      let check_profile prof =
        let* () =
          match Json.member "type" prof with
          | Some (Str "evented") -> Ok ()
          | _ -> Error "profile type is not evented"
        in
        let num k =
          match Json.member k prof with
          | Some (Num f) -> Ok f
          | _ -> Error ("profile missing numeric " ^ k)
        in
        let* start_v = num "startValue" in
        let* end_v = num "endValue" in
        let* evs =
          match Json.member "events" prof with
          | Some (Arr evs) -> Ok evs
          | _ -> Error "profile missing events array"
        in
        let stack = ref [] in
        let last_at = ref start_v in
        let step ev =
          incr checked;
          let* frame =
            match Json.member "frame" ev with
            | Some (Num f) when Float.rem f 1.0 = 0.0 -> Ok (int_of_float f)
            | _ -> Error "event missing integral frame"
          in
          let* () =
            if frame >= 0 && frame < nframes then Ok ()
            else Error (Printf.sprintf "frame index %d out of range" frame)
          in
          let* at =
            match Json.member "at" ev with
            | Some (Num f) -> Ok f
            | _ -> Error "event missing numeric at"
          in
          let* () =
            if at >= !last_at then (
              last_at := at;
              Ok ())
            else Error "event offsets not monotone"
          in
          match Json.member "type" ev with
          | Some (Str "O") ->
              stack := frame :: !stack;
              Ok ()
          | Some (Str "C") -> (
              match !stack with
              | top :: rest when top = frame ->
                  stack := rest;
                  Ok ()
              | top :: _ ->
                  Error
                    (Printf.sprintf "close of frame %d but frame %d is open"
                       frame top)
              | [] -> Error "close with empty stack")
          | _ -> Error "event type is not O or C"
        in
        let* () =
          List.fold_left
            (fun acc ev ->
              let* () = acc in
              step ev)
            (Ok ()) evs
        in
        let* () =
          if !stack = [] then Ok () else Error "unbalanced: spans left open"
        in
        if !last_at <= end_v then Ok ()
        else Error "event past the profile endValue"
      in
      let* () =
        List.fold_left
          (fun acc prof ->
            let* () = acc in
            check_profile prof)
          (Ok ()) profiles
      in
      Ok !checked

let validate_file path : (int, string) result = validate (Json.read_file path)
