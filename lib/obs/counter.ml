(* Typed event counters.

   Every layer of the stack counts through one preallocated int-array
   set addressed by a closed variant — a counter bump is two array
   ops on a constant index, where the old string-keyed hashtable paid
   a hash + probe + deref per event on scheduler hot paths.  The
   string names are kept (one per id) so rendering stays compatible
   with the old [Stats.Counters.to_list] output. *)

type id =
  (* kernel / scheduler *)
  | Context_switches
  | Preemptions
  | Ticks
  | Spawns
  | Thread_exits
  | Lock_contended
  (* hardware *)
  | Irq_dispatches
  | Ipi_sends
  | Timer_fires
  | Tlb_misses
  | Page_faults
  (* kernel services *)
  | Fiber_switches
  | Timing_checks
  | Device_irqs
  (* runtimes *)
  | Promotions
  | Steals
  | Heartbeats
  | Omp_regions
  | Omp_chunks
  | Guard_checks
  | Guard_faults
  | Virtine_spawns
  | Virtine_pool_hits
  (* coherence *)
  | Dir_transitions
  (* fault injection and recovery *)
  | Fault_injected
  | Ipi_retry
  | Watchdog_fire
  | Virtine_relaunch
  | Pool_evict
  | Move_rollback
  | Dir_ack_retry
  | Dir_stale_refetch
  | Barrier_recover
  (* service plane *)
  | Service_arrivals
  | Service_admitted
  | Service_completions
  | Service_shed
  | Service_backpressure
  | Service_hi_prio
  (* fleet / inter-machine network *)
  | Net_msgs
  | Net_drops
  | Net_retries
  | Net_nacks
  | Gossip_msgs
  | Machine_ejects
  | Service_failed
  (* service-level chaos + graceful degradation *)
  | Peer_steal
  | Hedge_sent
  | Hedge_won
  | Hedge_cancel
  | Admission_shed
  | Corrupt_retry
  (* NIC device + driver *)
  | Nic_rx_pkts
  | Nic_rx_drops
  | Nic_irqs
  | Nic_polls
  | Nic_poll_empty
  | Nic_tx_pkts
  | Nic_irq_recover

let count = 59

let index = function
  | Context_switches -> 0
  | Preemptions -> 1
  | Ticks -> 2
  | Spawns -> 3
  | Thread_exits -> 4
  | Lock_contended -> 5
  | Irq_dispatches -> 6
  | Ipi_sends -> 7
  | Timer_fires -> 8
  | Tlb_misses -> 9
  | Page_faults -> 10
  | Fiber_switches -> 11
  | Timing_checks -> 12
  | Device_irqs -> 13
  | Promotions -> 14
  | Steals -> 15
  | Heartbeats -> 16
  | Omp_regions -> 17
  | Omp_chunks -> 18
  | Guard_checks -> 19
  | Guard_faults -> 20
  | Virtine_spawns -> 21
  | Virtine_pool_hits -> 22
  | Dir_transitions -> 23
  | Fault_injected -> 24
  | Ipi_retry -> 25
  | Watchdog_fire -> 26
  | Virtine_relaunch -> 27
  | Pool_evict -> 28
  | Move_rollback -> 29
  | Dir_ack_retry -> 30
  | Dir_stale_refetch -> 31
  | Barrier_recover -> 32
  | Service_arrivals -> 33
  | Service_admitted -> 34
  | Service_completions -> 35
  | Service_shed -> 36
  | Service_backpressure -> 37
  | Service_hi_prio -> 38
  | Net_msgs -> 39
  | Net_drops -> 40
  | Net_retries -> 41
  | Net_nacks -> 42
  | Gossip_msgs -> 43
  | Machine_ejects -> 44
  | Service_failed -> 45
  | Peer_steal -> 46
  | Hedge_sent -> 47
  | Hedge_won -> 48
  | Hedge_cancel -> 49
  | Admission_shed -> 50
  | Corrupt_retry -> 51
  | Nic_rx_pkts -> 52
  | Nic_rx_drops -> 53
  | Nic_irqs -> 54
  | Nic_polls -> 55
  | Nic_poll_empty -> 56
  | Nic_tx_pkts -> 57
  | Nic_irq_recover -> 58

(* Names match the strings the old hashtable counters used, so table
   rendering is unchanged. *)
let name = function
  | Context_switches -> "context_switches"
  | Preemptions -> "preemptions"
  | Ticks -> "ticks"
  | Spawns -> "spawns"
  | Thread_exits -> "thread_exits"
  | Lock_contended -> "lock_contended"
  | Irq_dispatches -> "irq_dispatches"
  | Ipi_sends -> "ipi_sends"
  | Timer_fires -> "timer_fires"
  | Tlb_misses -> "tlb_misses"
  | Page_faults -> "page_faults"
  | Fiber_switches -> "fiber_switches"
  | Timing_checks -> "timing_checks"
  | Device_irqs -> "device_irqs"
  | Promotions -> "promotions"
  | Steals -> "steals"
  | Heartbeats -> "heartbeats"
  | Omp_regions -> "omp_regions"
  | Omp_chunks -> "omp_chunks"
  | Guard_checks -> "guard_checks"
  | Guard_faults -> "guard_faults"
  | Virtine_spawns -> "virtine_spawns"
  | Virtine_pool_hits -> "virtine_pool_hits"
  | Dir_transitions -> "dir_transitions"
  | Fault_injected -> "fault_injected"
  | Ipi_retry -> "ipi_retry"
  | Watchdog_fire -> "watchdog_fire"
  | Virtine_relaunch -> "virtine_relaunch"
  | Pool_evict -> "pool_evict"
  | Move_rollback -> "move_rollback"
  | Dir_ack_retry -> "dir_ack_retry"
  | Dir_stale_refetch -> "dir_stale_refetch"
  | Barrier_recover -> "barrier_recover"
  | Service_arrivals -> "service_arrivals"
  | Service_admitted -> "service_admitted"
  | Service_completions -> "service_completions"
  | Service_shed -> "service_shed"
  | Service_backpressure -> "service_backpressure"
  | Service_hi_prio -> "service_hi_prio"
  | Net_msgs -> "net_msgs"
  | Net_drops -> "net_drops"
  | Net_retries -> "net_retries"
  | Net_nacks -> "net_nacks"
  | Gossip_msgs -> "gossip_msgs"
  | Machine_ejects -> "machine_ejects"
  | Service_failed -> "service_failed"
  | Peer_steal -> "peer_steal"
  | Hedge_sent -> "hedge_sent"
  | Hedge_won -> "hedge_won"
  | Hedge_cancel -> "hedge_cancel"
  | Admission_shed -> "admission_shed"
  | Corrupt_retry -> "corrupt_retry"
  | Nic_rx_pkts -> "nic_rx_pkts"
  | Nic_rx_drops -> "nic_rx_drops"
  | Nic_irqs -> "nic_irqs"
  | Nic_polls -> "nic_polls"
  | Nic_poll_empty -> "nic_poll_empty"
  | Nic_tx_pkts -> "nic_tx_pkts"
  | Nic_irq_recover -> "nic_irq_recover"

let all =
  [
    Context_switches;
    Preemptions;
    Ticks;
    Spawns;
    Thread_exits;
    Lock_contended;
    Irq_dispatches;
    Ipi_sends;
    Timer_fires;
    Tlb_misses;
    Page_faults;
    Fiber_switches;
    Timing_checks;
    Device_irqs;
    Promotions;
    Steals;
    Heartbeats;
    Omp_regions;
    Omp_chunks;
    Guard_checks;
    Guard_faults;
    Virtine_spawns;
    Virtine_pool_hits;
    Dir_transitions;
    Fault_injected;
    Ipi_retry;
    Watchdog_fire;
    Virtine_relaunch;
    Pool_evict;
    Move_rollback;
    Dir_ack_retry;
    Dir_stale_refetch;
    Barrier_recover;
    Service_arrivals;
    Service_admitted;
    Service_completions;
    Service_shed;
    Service_backpressure;
    Service_hi_prio;
    Net_msgs;
    Net_drops;
    Net_retries;
    Net_nacks;
    Gossip_msgs;
    Machine_ejects;
    Service_failed;
    Peer_steal;
    Hedge_sent;
    Hedge_won;
    Hedge_cancel;
    Admission_shed;
    Corrupt_retry;
    Nic_rx_pkts;
    Nic_rx_drops;
    Nic_irqs;
    Nic_polls;
    Nic_poll_empty;
    Nic_tx_pkts;
    Nic_irq_recover;
  ]

type set = int array

let create () : set = Array.make count 0

let incr (s : set) id =
  let i = index id in
  Array.unsafe_set s i (Array.unsafe_get s i + 1)

let add (s : set) id k =
  let i = index id in
  Array.unsafe_set s i (Array.unsafe_get s i + k)

let get (s : set) id = s.(index id)

let reset (s : set) = Array.fill s 0 count 0

let merge_into ~(dst : set) (src : set) =
  for i = 0 to count - 1 do
    dst.(i) <- dst.(i) + src.(i)
  done

let sum (sets : set list) : set =
  let dst = create () in
  List.iter (fun s -> merge_into ~dst s) sets;
  dst

(* Only counters that have fired, sorted by name — the exact shape
   [Stats.Counters.to_list] produced (a hashtable only held touched
   keys, and counters only ever increment). *)
let to_list (s : set) =
  List.filter_map
    (fun id ->
      let v = get s id in
      if v <> 0 then Some (name id, v) else None)
    all
  |> List.sort (fun (a, _) (b, _) -> compare a b)
