(* Windowed time series: the online half of the observability stack.

   A series is a fixed set of named integer columns sampled together
   on the virtual clock into a preallocated ring — one int per column
   per sample, no per-sample allocation, so a sampler can run inside
   the simulation without perturbing it.  Columns are plain closures
   over whatever the owner wants to expose (typed-counter deltas,
   queue depths, windowed histogram percentiles), which keeps this
   module dependency-free: the service layer builds latency columns
   from [Hist] windows and hands them in as [unit -> int].

   Determinism: a sample reads simulation state and writes only into
   the series' own ring, so sampling on/off cannot change a run's
   tables; fleet samplers additionally run only at the conservative-
   window barrier on the coordinator domain, so parallel and serial
   fleets sample identical values (DESIGN §10). *)

type col = { col_name : string; col_read : unit -> int }

let col ~name read = { col_name = name; col_read = read }

(* Delta column over a monotone reading: each sample reports the
   increase since the previous sample (the closure owns the cursor). *)
let dcol ~name read =
  let prev = ref 0 in
  {
    col_name = name;
    col_read =
      (fun () ->
        let v = read () in
        let d = v - !prev in
        prev := v;
        d);
  }

let dref ~name r = dcol ~name (fun () -> !r)

type t = {
  s_name : string;
  s_cols : col array;
  s_post : (unit -> unit) array;  (* run after each sample (window advance) *)
  s_cap : int;
  s_ts : int array;
  s_buf : int array;  (* s_cap * ncols, row-major *)
  mutable s_pos : int;  (* next write slot *)
  mutable s_taken : int;  (* total samples ever taken *)
}

let create ?(capacity = 4096) ~name ~cols ?(post = []) () =
  if capacity <= 0 then invalid_arg "Series.create: capacity <= 0";
  let cols = Array.of_list cols in
  if Array.length cols = 0 then invalid_arg "Series.create: no columns";
  {
    s_name = name;
    s_cols = cols;
    s_post = Array.of_list post;
    s_cap = capacity;
    s_ts = Array.make capacity 0;
    s_buf = Array.make (capacity * Array.length cols) 0;
    s_pos = 0;
    s_taken = 0;
  }

let name t = t.s_name
let ncols t = Array.length t.s_cols
let col_names t = Array.to_list (Array.map (fun c -> c.col_name) t.s_cols)

let sample t ~ts =
  let n = Array.length t.s_cols in
  let base = t.s_pos * n in
  t.s_ts.(t.s_pos) <- ts;
  for i = 0 to n - 1 do
    t.s_buf.(base + i) <- t.s_cols.(i).col_read ()
  done;
  for i = 0 to Array.length t.s_post - 1 do
    t.s_post.(i) ()
  done;
  t.s_pos <- (if t.s_pos + 1 = t.s_cap then 0 else t.s_pos + 1);
  t.s_taken <- t.s_taken + 1

let length t = min t.s_taken t.s_cap
let taken t = t.s_taken
let dropped t = max 0 (t.s_taken - t.s_cap)

(* Ring slot of retained sample [i] (0 = oldest retained). *)
let slot t i =
  if i < 0 || i >= length t then invalid_arg "Series.slot: out of range";
  if t.s_taken <= t.s_cap then i
  else
    let s = t.s_pos + i in
    if s >= t.s_cap then s - t.s_cap else s

let ts_at t i = t.s_ts.(slot t i)
let get t i c = t.s_buf.((slot t i * Array.length t.s_cols) + c)

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "ts_cycles";
  Array.iter
    (fun c ->
      Buffer.add_char b ',';
      Buffer.add_string b c.col_name)
    t.s_cols;
  Buffer.add_char b '\n';
  let n = Array.length t.s_cols in
  for i = 0 to length t - 1 do
    Buffer.add_string b (string_of_int (ts_at t i));
    for c = 0 to n - 1 do
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int (get t i c))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let write_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

(* ------------------------------------------------------------------ *)
(* Ambient sampling period.  One plain global, set once by the CLI
   before any run (and before any domain spawns): runs that were not
   handed an explicit period sample at this one if it is nonzero.
   Keeping it a read-mostly global (not DLS) means a parallel
   experiment driver's worker domains see the same period. *)

let ambient_period_us = ref 0.0
let set_period_us us = ambient_period_us := if us > 0.0 then us else 0.0
let period_us () = !ambient_period_us

(* ------------------------------------------------------------------ *)
(* Published series: runs deposit their series here (domain-locally,
   so parallel experiment drivers cannot interleave) for an exporter
   running afterwards on the same domain — the trace CLI renders
   published series as Chrome counter tracks. *)

let published_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let publish t =
  let r = Domain.DLS.get published_key in
  r := t :: !r

let published () = List.rev !(Domain.DLS.get published_key)
let clear_published () = Domain.DLS.get published_key := []
