(* Minimal hand-rolled JSON reader (the container has no JSON
   library) shared by the Chrome and speedscope validators.  Just
   enough of the grammar to read back what our exporters write. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              Buffer.add_char b '"';
              advance ();
              go ()
          | Some '\\' ->
              Buffer.add_char b '\\';
              advance ();
              go ()
          | Some '/' ->
              Buffer.add_char b '/';
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char b '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char b '\012';
              advance ();
              go ()
          | Some 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              (* ASCII only; our exporters never emit higher codepoints. *)
              Buffer.add_char b (Char.chr (code land 0x7f));
              pos := !pos + 5;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when is_num_char c -> true | _ -> false do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | _ -> fail "expected value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      advance ();
      Obj [])
    else
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      advance ();
      Arr [])
    else
      let rec elems acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems (v :: acc)
        | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Shared string escaping for the exporters (Chrome + speedscope). *)
let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s
