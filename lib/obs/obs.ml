(* The observability context threaded through every layer.

   One [t] bundles the typed counter set and the trace bus; hw,
   kernel, and runtime modules take it as an optional argument
   defaulting to the domain-local ambient context.  The ambient
   default is a null context (counters still count, tracing is off),
   and [with_ambient] scopes a real one for the current domain only —
   experiments running in sibling domains keep their own nulls, so
   parallel runs never share or race on a trace. *)

type t = {
  counters : Counter.set;
  trace : Trace.t;
  collect : bool;  (* register child counter sets for aggregation *)
  mutable children : Counter.set list;  (* newest first; only when collect *)
}

let create ?trace ?(collect = false) () =
  let trace = match trace with Some tr -> tr | None -> Trace.null () in
  { counters = Counter.create (); trace; collect; children = [] }

let null () = create ()

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> null ())

let ambient () = Domain.DLS.get key

(* Fresh counters wired to the ambient trace: what a newly created
   component wants by default — its counts stay its own (successive
   kernels in one experiment must not share cells), while its probes
   land in whatever trace the caller scoped with [with_ambient].  A
   collecting ambient additionally remembers the fresh set, so
   machine-wide totals can be summed afterwards; the default null
   ambient never collects, so unscoped component churn (e.g. bench
   loops) cannot grow an unbounded child list. *)
let inherit_trace () =
  let amb = ambient () in
  let counters = Counter.create () in
  if amb.collect then amb.children <- counters :: amb.children;
  { counters; trace = amb.trace; collect = false; children = [] }

(* Machine-wide totals: the context's own counters plus every child
   set registered through [inherit_trace] while collecting. *)
let total_counters t = Counter.sum (t.counters :: List.rev t.children)

let with_ambient obs f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key obs;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
