(* The observability context threaded through every layer.

   One [t] bundles the typed counter set and the trace bus; hw,
   kernel, and runtime modules take it as an optional argument
   defaulting to the domain-local ambient context.  The ambient
   default is a null context (counters still count, tracing is off),
   and [with_ambient] scopes a real one for the current domain only —
   experiments running in sibling domains keep their own nulls, so
   parallel runs never share or race on a trace. *)

type t = { counters : Counter.set; trace : Trace.t }

let create ?trace () =
  let trace = match trace with Some tr -> tr | None -> Trace.null () in
  { counters = Counter.create (); trace }

let null () = create ()

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> null ())

let ambient () = Domain.DLS.get key

(* Fresh counters wired to the ambient trace: what a newly created
   component wants by default — its counts stay its own (successive
   kernels in one experiment must not share cells), while its probes
   land in whatever trace the caller scoped with [with_ambient]. *)
let inherit_trace () = { counters = Counter.create (); trace = (ambient ()).trace }

let with_ambient obs f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key obs;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
