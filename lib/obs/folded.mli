(** Folded-stack ("frame;frame count") export for flamegraph.pl and
    speedscope's folded importer.  Counts are self cycles. *)

val to_string : Profile.t -> string
(** One line per unique stack path, paths sorted, counts = self
    cycles; line counts sum to [Profile.total_cycles]. *)

val write_file : Profile.t -> string -> unit

val parse : string -> (string * int) list
(** Read back [(path, count)] lines; raises [Invalid_argument] on
    malformed lines. *)

val check : string -> total:int -> (int, string) result
(** Validate a folded export: parses, and the counts sum to [total]
    (the profile's traced cycles).  Returns the line count. *)

val check_file : string -> total:int -> (int, string) result
