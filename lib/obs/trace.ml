(* The trace bus: spans and instants on virtual-cycle timestamps.

   Probe sites all over the stack call {!span}/{!instant}
   unconditionally; the [enabled] flag is checked first thing, so with
   the null sink a probe is one load and one perfectly-predicted
   branch — cheap enough to leave compiled into every hot path.  The
   ring sink keeps the last [capacity] events (older ones are
   overwritten and counted as dropped), which bounds memory no matter
   how long a traced run is. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_cpu : int;  (* simulated CPU = one Chrome "process"; -1 = machine *)
  ev_ts : int;  (* virtual cycles *)
  ev_dur : int;  (* 0 for instants *)
  ev_flow : int;  (* 0 = not a flow event; else flow_start/step/finish *)
  ev_id : int;  (* flow id (request id); 0 unless ev_flow <> 0 *)
}

let flow_start = 1
let flow_step = 2
let flow_finish = 3

type t = {
  mutable enabled : bool;
  mutable flows : bool;  (* flow probes additionally need this opt-in *)
  buf : event array;  (* [||] for the null and counting sinks *)
  cap : int;
  mutable pos : int;  (* next write slot *)
  mutable emitted : int;  (* total events ever pushed *)
  mutable cpu_base : int;  (* added to every non-negative ev_cpu *)
  mutable flow_base : int;  (* added to every flow id; see new_flow_scope *)
  shape : (string, int ref) Hashtbl.t option;  (* counting sink tallies *)
}

let null_event =
  { ev_name = ""; ev_cat = ""; ev_cpu = -1; ev_ts = 0; ev_dur = 0; ev_flow = 0;
    ev_id = 0 }

let null () =
  { enabled = false; flows = false; buf = [||]; cap = 0; pos = 0; emitted = 0;
    cpu_base = 0; flow_base = 0; shape = None }

let ring ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity <= 0";
  {
    enabled = true;
    flows = false;
    buf = Array.make capacity null_event;
    cap = capacity;
    pos = 0;
    emitted = 0;
    cpu_base = 0;
    flow_base = 0;
    shape = None;
  }

let counting () =
  { enabled = true; flows = false; buf = [||]; cap = 0; pos = 0; emitted = 0;
    cpu_base = 0; flow_base = 0; shape = Some (Hashtbl.create 64) }

let enabled t = t.enabled
let set_flows t on = t.flows <- on
let flows_enabled t = t.enabled && t.flows
let set_cpu_base t base = t.cpu_base <- base

(* Request handles restart at 0 on every service/fleet run, so a trace
   spanning several runs (an experiment sweep) would see every handle's
   flow "start" again.  Each run opens a fresh scope; the spacing
   leaves room for 2^32 requests per run. *)
let new_flow_scope t = t.flow_base <- t.flow_base + (1 lsl 32)

let push t ev =
  (match t.shape with
  | None -> ()
  | Some tbl -> (
      let key = ev.ev_cat ^ "/" ^ ev.ev_name in
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None -> Hashtbl.add tbl key (ref 1)));
  if t.cap > 0 then begin
    t.buf.(t.pos) <- ev;
    t.pos <- (if t.pos + 1 = t.cap then 0 else t.pos + 1)
  end;
  t.emitted <- t.emitted + 1

let span t ~name ?(cat = "stack") ~cpu ~ts ~dur () =
  if t.enabled then
    let cpu = if cpu >= 0 then cpu + t.cpu_base else cpu in
    push t
      { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = dur;
        ev_flow = 0; ev_id = 0 }

let instant t ~name ?(cat = "stack") ~cpu ~ts () =
  if t.enabled then
    let cpu = if cpu >= 0 then cpu + t.cpu_base else cpu in
    push t
      { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = 0;
        ev_flow = 0; ev_id = 0 }

(* Flow probes are double-gated: [enabled] like every probe, plus the
   [flows] opt-in, so golden span-shape runs (counting sink, flows
   off) never see flow events and `trace` output only grows them
   under --flows. *)
let flow t ~name ?(cat = "flow") ~phase ~id ~cpu ~ts () =
  if t.enabled && t.flows then begin
    if phase < flow_start || phase > flow_finish then
      invalid_arg "Trace.flow: bad phase";
    let cpu = if cpu >= 0 then cpu + t.cpu_base else cpu in
    push t
      { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = 0;
        ev_flow = phase; ev_id = id + t.flow_base }
  end

let shape_counts t =
  match t.shape with
  | None -> []
  | Some tbl ->
      List.sort compare
        (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let emitted t = t.emitted

let dropped t = max 0 (t.emitted - t.cap)

let length t = min t.emitted t.cap

(* Oldest-first contents of the ring. *)
let events t =
  if t.emitted <= t.cap then Array.to_list (Array.sub t.buf 0 t.emitted)
  else
    Array.to_list (Array.sub t.buf t.pos (t.cap - t.pos))
    @ Array.to_list (Array.sub t.buf 0 t.pos)

let clear t =
  t.pos <- 0;
  t.emitted <- 0
