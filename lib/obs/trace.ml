(* The trace bus: spans and instants on virtual-cycle timestamps.

   Probe sites all over the stack call {!span}/{!instant}
   unconditionally; the [enabled] flag is checked first thing, so with
   the null sink a probe is one load and one perfectly-predicted
   branch — cheap enough to leave compiled into every hot path.  The
   ring sink keeps the last [capacity] events (older ones are
   overwritten and counted as dropped), which bounds memory no matter
   how long a traced run is. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_cpu : int;  (* simulated CPU = one Chrome "process"; -1 = machine *)
  ev_ts : int;  (* virtual cycles *)
  ev_dur : int;  (* 0 for instants *)
}

type t = {
  mutable enabled : bool;
  buf : event array;  (* [||] for the null and counting sinks *)
  cap : int;
  mutable pos : int;  (* next write slot *)
  mutable emitted : int;  (* total events ever pushed *)
  mutable cpu_base : int;  (* added to every non-negative ev_cpu *)
  shape : (string, int ref) Hashtbl.t option;  (* counting sink tallies *)
}

let null_event = { ev_name = ""; ev_cat = ""; ev_cpu = -1; ev_ts = 0; ev_dur = 0 }

let null () =
  { enabled = false; buf = [||]; cap = 0; pos = 0; emitted = 0; cpu_base = 0;
    shape = None }

let ring ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity <= 0";
  {
    enabled = true;
    buf = Array.make capacity null_event;
    cap = capacity;
    pos = 0;
    emitted = 0;
    cpu_base = 0;
    shape = None;
  }

let counting () =
  { enabled = true; buf = [||]; cap = 0; pos = 0; emitted = 0; cpu_base = 0;
    shape = Some (Hashtbl.create 64) }

let enabled t = t.enabled
let set_cpu_base t base = t.cpu_base <- base

let push t ev =
  (match t.shape with
  | None -> ()
  | Some tbl -> (
      let key = ev.ev_cat ^ "/" ^ ev.ev_name in
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None -> Hashtbl.add tbl key (ref 1)));
  if t.cap > 0 then begin
    t.buf.(t.pos) <- ev;
    t.pos <- (if t.pos + 1 = t.cap then 0 else t.pos + 1)
  end;
  t.emitted <- t.emitted + 1

let span t ~name ?(cat = "stack") ~cpu ~ts ~dur () =
  if t.enabled then
    let cpu = if cpu >= 0 then cpu + t.cpu_base else cpu in
    push t { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = dur }

let instant t ~name ?(cat = "stack") ~cpu ~ts () =
  if t.enabled then
    let cpu = if cpu >= 0 then cpu + t.cpu_base else cpu in
    push t { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = 0 }

let shape_counts t =
  match t.shape with
  | None -> []
  | Some tbl ->
      List.sort compare
        (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let emitted t = t.emitted

let dropped t = max 0 (t.emitted - t.cap)

let length t = min t.emitted t.cap

(* Oldest-first contents of the ring. *)
let events t =
  if t.emitted <= t.cap then Array.to_list (Array.sub t.buf 0 t.emitted)
  else
    Array.to_list (Array.sub t.buf t.pos (t.cap - t.pos))
    @ Array.to_list (Array.sub t.buf 0 t.pos)

let clear t =
  t.pos <- 0;
  t.emitted <- 0
