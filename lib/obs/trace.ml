(* The trace bus: spans and instants on virtual-cycle timestamps.

   Probe sites all over the stack call {!span}/{!instant}
   unconditionally; the [enabled] flag is checked first thing, so with
   the null sink a probe is one load and one perfectly-predicted
   branch — cheap enough to leave compiled into every hot path.  The
   ring sink keeps the last [capacity] events (older ones are
   overwritten and counted as dropped), which bounds memory no matter
   how long a traced run is. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_cpu : int;  (* simulated CPU = one Chrome "process"; -1 = machine *)
  ev_ts : int;  (* virtual cycles *)
  ev_dur : int;  (* 0 for instants *)
}

type t = {
  mutable enabled : bool;
  buf : event array;  (* [||] for the null sink *)
  cap : int;
  mutable pos : int;  (* next write slot *)
  mutable emitted : int;  (* total events ever pushed *)
}

let null_event = { ev_name = ""; ev_cat = ""; ev_cpu = -1; ev_ts = 0; ev_dur = 0 }

let null () = { enabled = false; buf = [||]; cap = 0; pos = 0; emitted = 0 }

let ring ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity <= 0";
  {
    enabled = true;
    buf = Array.make capacity null_event;
    cap = capacity;
    pos = 0;
    emitted = 0;
  }

let enabled t = t.enabled

let push t ev =
  t.buf.(t.pos) <- ev;
  t.pos <- (if t.pos + 1 = t.cap then 0 else t.pos + 1);
  t.emitted <- t.emitted + 1

let span t ~name ?(cat = "stack") ~cpu ~ts ~dur () =
  if t.enabled then
    push t { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = dur }

let instant t ~name ?(cat = "stack") ~cpu ~ts () =
  if t.enabled then
    push t { ev_name = name; ev_cat = cat; ev_cpu = cpu; ev_ts = ts; ev_dur = 0 }

let emitted t = t.emitted

let dropped t = max 0 (t.emitted - t.cap)

let length t = min t.emitted t.cap

(* Oldest-first contents of the ring. *)
let events t =
  if t.emitted <= t.cap then Array.to_list (Array.sub t.buf 0 t.emitted)
  else
    Array.to_list (Array.sub t.buf t.pos (t.cap - t.pos))
    @ Array.to_list (Array.sub t.buf 0 t.pos)

let clear t =
  t.pos <- 0;
  t.emitted <- 0
