(* Golden counter snapshots: cheap cross-PR regression gating.

   A snapshot is a text file of "counter value" lines (plus '#'
   comments), one per experiment, committed under golden/.  The check
   re-runs the experiment with a collecting ambient context and
   compares the machine-wide counter totals against the snapshot:
   exact by default, with per-counter percentage tolerances for the
   scheduling-noise counters whose exact values encode timing rather
   than behaviour.  Either way a real behaviour drift — a lost IPI, a
   doubled guard check, a vanished promotion — fails the gate and
   names the counter, without byte-diffing every rendered table. *)

type tolerance = Exact | Pct of float

(* Counters whose values are timing-derived (tick trains, timer and
   preemption interleavings) rather than direct behaviour counts.
   Experiments are deterministic, so even these match exactly today;
   the slack only says how much timing drift a PR may introduce
   without failing the gate. *)
let default_tolerances =
  [
    ("ticks", Pct 2.0);
    ("timer_fires", Pct 2.0);
    ("irq_dispatches", Pct 2.0);
    ("preemptions", Pct 5.0);
    ("context_switches", Pct 2.0);
    ("lock_contended", Pct 10.0);
  ]

(* Trace-shape keys are "cat/name" tallies from [Trace.counting];
   the timing-noise-derived event families get the same slack their
   counter twins do. *)
let shape_tolerances =
  [
    ("hw/timer_fire", Pct 2.0);
    ("hw/irq", Pct 2.0);
    ("hw/ipi_send", Pct 2.0);
    ("hw/ipi_recv", Pct 2.0);
    ("sched/preempt", Pct 5.0);
    ("kernel/device_irq", Pct 2.0);
    ("fiber/fiber_switch", Pct 2.0);
  ]

let allowance tol expected =
  match tol with
  | Exact -> 0
  | Pct p -> int_of_float (ceil (p /. 100.0 *. float (max 1 (abs expected))))

type drift = {
  d_counter : string;
  d_expected : int;
  d_actual : int;
  d_allowed : int;
}

let render_drift d =
  Printf.sprintf "%s: expected %d, got %d (allowed drift %d)" d.d_counter
    d.d_expected d.d_actual d.d_allowed

let render ?(header = []) (counters : (string * int) list) =
  let b = Buffer.create 256 in
  List.iter (fun line -> Buffer.add_string b (Printf.sprintf "# %s\n" line)) header;
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
    (List.sort (fun (a, _) (b, _) -> compare a b) counters);
  Buffer.contents b

let is_sep c = c = ' ' || c = '\t'

let parse (s : string) : (string * int) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         (* Tolerate trailing whitespace, CRLF endings, and blank
            lines from hand-edited snapshot files. *)
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else begin
           (* The value is the trailing token; split on the last run
              of spaces/tabs, since span names may themselves contain
              spaces and editors may retab the separator. *)
           let len = String.length line in
           let vend = ref (len - 1) in
           while !vend >= 0 && not (is_sep line.[!vend]) do decr vend done;
           if !vend < 0 then
             invalid_arg ("Golden.parse: malformed line: " ^ line);
           let v = String.sub line (!vend + 1) (len - !vend - 1) in
           let nend = ref !vend in
           while !nend >= 0 && is_sep line.[!nend] do decr nend done;
           if !nend < 0 then
             invalid_arg ("Golden.parse: malformed line: " ^ line);
           let name = String.sub line 0 (!nend + 1) in
           match int_of_string_opt v with
           | Some v -> Some (name, v)
           | None -> invalid_arg ("Golden.parse: bad value on line: " ^ line)
         end)

(* Compare actual counters against a snapshot over the union of names
   (a counter missing on either side reads as 0, so both newly fired
   and newly silent counters are drifts).  Returns the out-of-tolerance
   drifts sorted by counter name. *)
let compare_counters ?(tolerances = default_tolerances)
    ~(expected : (string * int) list) (actual : (string * int) list) : drift list =
  let names =
    List.sort_uniq compare (List.map fst expected @ List.map fst actual)
  in
  List.filter_map
    (fun name ->
      let get l = match List.assoc_opt name l with Some v -> v | None -> 0 in
      let e = get expected and a = get actual in
      let tol =
        match List.assoc_opt name tolerances with Some t -> t | None -> Exact
      in
      let allowed = allowance tol e in
      if abs (a - e) > allowed then
        Some { d_counter = name; d_expected = e; d_actual = a; d_allowed = allowed }
      else None)
    names

let write_file ?header counters path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?header counters))

let read_file path = parse (Json.read_file path)
