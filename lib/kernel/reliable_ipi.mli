(** Acknowledged IPIs with bounded exponential-backoff resend.

    Same shape as {!Iw_hw.Ipi}, but the sender tracks delivery: if the
    wrapped handler has not run by the timeout, the IPI is resent with
    a doubled timeout, up to {!max_attempts} total sends.  Each resend
    bumps the [ipi_retry] counter and emits an [ipi_retry] trace
    instant.  Handlers may run more than once (a duplicated wire or a
    resend racing a slow delivery); callers must be idempotent. *)

val max_attempts : int

val default_timeout : Iw_hw.Platform.costs -> int
(** First-attempt ack timeout in cycles; doubles per resend. *)

val send :
  ?timeout:int ->
  Iw_engine.Sim.t ->
  Iw_hw.Platform.t ->
  target:Iw_hw.Cpu.t ->
  handler:(preempted:int -> int) ->
  after:(unit -> unit) ->
  unit

val broadcast :
  ?timeout:int ->
  Iw_engine.Sim.t ->
  Iw_hw.Platform.t ->
  targets:Iw_hw.Cpu.t list ->
  handler:(int -> preempted:int -> int) ->
  after:(int -> unit) ->
  unit
