(** Kernel-side NIC driver: interrupt, busy-poll, and NAPI-style
    hybrid receive.

    The driver is the layer above {!Iw_hw.Nic}: it owns the RX drain
    (batched, at most [nd_budget] frames per burst) and chooses how
    packets reach the handler:

    - [Irq]: every device assertion lands on CPU [nd_cpu] through
      {!Iw_hw.Cpu.interrupt} (the same dispatch/return costs as
      [Device_irq]), the handler drains a budget-bounded batch, then
      re-enables the auto-masked device — so interrupt work taxes the
      worker that owns that core, which is the whole tradeoff.
    - [Poll]: the device is masked forever and a dedicated poll engine
      (a sim timer, not a worker core — think a DPDK lcore) checks the
      ring every [nd_poll_cycles], burning [nd_poll_cost] cycles per
      check whether or not frames are waiting.  Empty checks are the
      wasted-poll-cycles power proxy.
    - [Hybrid] (NAPI): interrupts armed; the driver watches the
      observed arrival rate through inter-IRQ gaps, and a streak of
      [nd_switch_streak] gaps at or under [nd_switch_gap] cycles (or a
      budget-limited drain that leaves frames behind) switches to the
      poll loop; [nd_idle_polls] consecutive empty polls re-enable
      interrupts and stop polling.

    Lost-interrupt recovery lives here, one layer above the fault:
    when the ambient plan arms [Nic_irq_lost] (and the mode can take
    interrupts), a slack timer scans for the stranded state — device
    masked, no assertion in flight, frames waiting — and re-injects
    the delivery, counted as [nic_irq_recover].  Unfaulted runs never
    arm the timer, so they stay byte-identical. *)

open Iw_hw

type mode = Irq | Poll | Hybrid

val mode_name : mode -> string
val mode_of_string : string -> mode option

type config = {
  nd_mode : mode;
  nd_cpu : int;  (** IRQ steering target *)
  nd_budget : int;  (** max frames per IRQ burst or poll check *)
  nd_poll_cycles : int;  (** poll-engine period *)
  nd_poll_cost : int;  (** cycles one poll check burns *)
  nd_pkt_cycles : int;  (** per-frame handler cost charged on IRQ *)
  nd_slack_cycles : int;  (** lost-IRQ recovery scan period *)
  nd_switch_gap : int;
      (** hybrid: an inter-IRQ gap at or under this many cycles counts
          as "arriving fast" for the switch-in estimator *)
  nd_switch_streak : int;  (** hybrid: fast gaps in a row before polling *)
  nd_idle_polls : int;  (** hybrid: empty polls in a row before IRQs *)
}

val default : config

type t

val create :
  k:Sched.t -> nic:Nic.t -> config -> handler:(a:int -> b:int -> unit) -> t
(** Wires the device's [on_irq], masks it in [Poll] mode, starts the
    poll engine ([Poll]) and — only when the ambient plan arms
    [Nic_irq_lost] — the recovery slack timer.  [handler] receives
    each frame's payload words from event context. *)

val stop : t -> unit
(** Disarm the poll and slack timers (idempotent); like the executor's
    watchdog, a drained simulator must not be kept alive by them. *)

val mode : t -> mode
val polls : t -> int
val empty_polls : t -> int
val poll_cycles_spent : t -> int

val wasted_cycles : t -> int
(** Poll-engine cycles burned by empty checks — the power proxy. *)

val irq_bursts : t -> int
val switches : t -> int
(** Hybrid IRQ→poll transitions. *)

val slack_recovers : t -> int
