(* NIC driver: interrupt, busy-poll, and NAPI-style hybrid RX.

   All callbacks are preallocated at creation (the poll tick, the
   slack tick, the interrupt handler/after pair), so the steady-state
   receive path allocates nothing — matching the PR 6 discipline the
   executor hot path follows. *)

open Iw_engine
open Iw_hw
open Iw_obs
open Iw_faults

type mode = Irq | Poll | Hybrid

let mode_name = function Irq -> "irq" | Poll -> "poll" | Hybrid -> "hybrid"

let mode_of_string = function
  | "irq" -> Some Irq
  | "poll" -> Some Poll
  | "hybrid" -> Some Hybrid
  | _ -> None

type config = {
  nd_mode : mode;
  nd_cpu : int;
  nd_budget : int;
  nd_poll_cycles : int;
  nd_poll_cost : int;
  nd_pkt_cycles : int;
  nd_slack_cycles : int;
  nd_switch_gap : int;
  nd_switch_streak : int;
  nd_idle_polls : int;
}

let default =
  {
    nd_mode = Hybrid;
    nd_cpu = 0;
    nd_budget = 16;
    nd_poll_cycles = 1_400;
    nd_poll_cost = 80;
    nd_pkt_cycles = 120;
    nd_slack_cycles = 70_000;
    nd_switch_gap = 5_600;
    nd_switch_streak = 2;
    nd_idle_polls = 12;
  }

type t = {
  k : Sched.t;
  nic : Nic.t;
  mode : mode;
  cpu : int;
  budget : int;
  poll_cycles : int;
  poll_cost : int;
  pkt_cycles : int;
  slack_cycles : int;
  switch_gap : int;
  switch_streak : int;
  idle_polls : int;
  handler : a:int -> b:int -> unit;
  poll_timer : Sim.timer;
  mutable polling : bool;
  mutable poll_cb : unit -> unit;
  slack_timer : Sim.timer;
  mutable slack_cb : unit -> unit;
  mutable irq_h : preempted:int -> int;
  mutable irq_after : unit -> unit;
  mutable recovering : bool;  (* slack re-injection awaiting its handler *)
  mutable prev_irq_ts : int;  (* arrival-rate estimator state *)
  mutable short_streak : int;  (* consecutive inter-IRQ gaps below threshold *)
  mutable empty_streak : int;  (* consecutive empty polls while polling *)
  mutable stopped : bool;
  mutable polls : int;
  mutable empty_polls : int;
  mutable poll_cycles_spent : int;
  mutable wasted_cycles : int;
  mutable irq_bursts : int;
  mutable switches : int;
  mutable slack_recovers : int;
}

(* Batched receive: deliver at most [budget] frames to the handler. *)
let drain t =
  let n = ref 0 in
  while !n < t.budget && Nic.rx_avail t.nic > 0 do
    let a = Nic.rx_peek_a t.nic and b = Nic.rx_peek_b t.nic in
    Nic.rx_consume t.nic;
    incr n;
    t.handler ~a ~b
  done;
  !n

let arm_poll t =
  Sim.arm (Sched.sim t.k) t.poll_timer
    ~at:(Sim.now (Sched.sim t.k) + t.poll_cycles)
    t.poll_cb

let start_polling t =
  if not t.polling then begin
    t.polling <- true;
    t.switches <- t.switches + 1;
    arm_poll t
  end

(* Inject the delivery on the steered CPU — same cost model as
   [Device_irq] — whether the device asserted it or the slack timer is
   re-injecting a lost one. *)
let deliver t =
  let plat = Sched.platform t.k in
  Cpu.interrupt (Sched.cpu t.k t.cpu)
    ~dispatch:plat.Platform.costs.interrupt_dispatch
    ~return_cost:plat.Platform.costs.interrupt_return ~handler:t.irq_h
    ~after:t.irq_after

let create ~k ~nic cfg ~handler =
  if cfg.nd_budget <= 0 then invalid_arg "Nic_driver.create: budget <= 0";
  if cfg.nd_poll_cycles <= 0 then
    invalid_arg "Nic_driver.create: poll period <= 0";
  if cfg.nd_cpu < 0 || cfg.nd_cpu >= Sched.cpu_count k then
    invalid_arg "Nic_driver.create: bad steering target";
  let t =
    {
      k;
      nic;
      mode = cfg.nd_mode;
      cpu = cfg.nd_cpu;
      budget = cfg.nd_budget;
      poll_cycles = cfg.nd_poll_cycles;
      poll_cost = cfg.nd_poll_cost;
      pkt_cycles = cfg.nd_pkt_cycles;
      slack_cycles = cfg.nd_slack_cycles;
      switch_gap = cfg.nd_switch_gap;
      switch_streak = cfg.nd_switch_streak;
      idle_polls = cfg.nd_idle_polls;
      handler;
      poll_timer = Sim.timer (Sched.sim k);
      polling = false;
      poll_cb = ignore;
      slack_timer = Sim.timer (Sched.sim k);
      slack_cb = ignore;
      irq_h = (fun ~preempted:_ -> 0);
      irq_after = ignore;
      recovering = false;
      prev_irq_ts = min_int asr 1;
      short_streak = 0;
      empty_streak = 0;
      stopped = false;
      polls = 0;
      empty_polls = 0;
      poll_cycles_spent = 0;
      wasted_cycles = 0;
      irq_bursts = 0;
      switches = 0;
      slack_recovers = 0;
    }
  in
  let ctr = Sched.counters k in
  t.irq_h <-
    (fun ~preempted ->
      if preempted >= 0 then Sched.stash_preempted t.k t.cpu preempted;
      t.irq_bursts <- t.irq_bursts + 1;
      t.recovering <- false;
      let now = Sim.now (Sched.sim t.k) in
      let gap = now - t.prev_irq_ts in
      t.prev_irq_ts <- now;
      if gap <= t.switch_gap then t.short_streak <- t.short_streak + 1
      else t.short_streak <- 0;
      let n = drain t in
      Nic.irq_done t.nic;
      (match t.mode with
      | Irq -> Nic.enable_irq t.nic
      | Hybrid ->
          (* NAPI-style, driven by the observed arrival rate: a run of
             back-to-back interrupts (or a budget-limited drain that
             left frames behind) arms the poll loop; otherwise stay
             interrupt-driven. *)
          if
            t.short_streak >= t.switch_streak
            || (n >= t.budget && Nic.rx_avail t.nic > 0)
          then start_polling t
          else Nic.enable_irq t.nic
      | Poll -> ());
      max 1 (n * t.pkt_cycles));
  t.irq_after <- (fun () -> Sched.resched_or_resume t.k t.cpu);
  t.poll_cb <-
    (fun () ->
      if (not t.stopped) && t.polling then begin
        t.polls <- t.polls + 1;
        Counter.incr ctr Counter.Nic_polls;
        t.poll_cycles_spent <- t.poll_cycles_spent + t.poll_cost;
        let n = drain t in
        if n = 0 then begin
          t.empty_polls <- t.empty_polls + 1;
          Counter.incr ctr Counter.Nic_poll_empty;
          t.wasted_cycles <- t.wasted_cycles + t.poll_cost;
          match t.mode with
          | Poll -> arm_poll t
          | Hybrid ->
              (* Drains coming up empty: after a short idle streak the
                 arrival estimate no longer justifies burning checks,
                 so hand back to interrupts. *)
              t.empty_streak <- t.empty_streak + 1;
              if t.empty_streak >= t.idle_polls then begin
                t.polling <- false;
                t.short_streak <- 0;
                Nic.enable_irq t.nic
              end
              else arm_poll t
          | Irq -> ()
        end
        else begin
          t.empty_streak <- 0;
          arm_poll t
        end
      end);
  t.slack_cb <-
    (fun () ->
      if not t.stopped then begin
        if
          (not t.polling) && (not t.recovering)
          && Nic.rx_avail t.nic > 0
          && (not (Nic.irq_enabled t.nic))
          && not (Nic.irq_inflight t.nic)
        then begin
          (* The device masked itself and the assertion never arrived:
             recover by re-injecting the delivery from up here. *)
          t.slack_recovers <- t.slack_recovers + 1;
          Counter.incr ctr Counter.Nic_irq_recover;
          let obs = Sched.obs t.k in
          if obs.Obs.trace.Trace.enabled then
            Trace.instant obs.Obs.trace ~name:"nic:irq-recover" ~cat:"nic"
              ~cpu:t.cpu
              ~ts:(Sim.now (Sched.sim t.k))
              ();
          t.recovering <- true;
          deliver t
        end;
        Sim.arm (Sched.sim t.k) t.slack_timer
          ~at:(Sim.now (Sched.sim t.k) + t.slack_cycles)
          t.slack_cb
      end);
  (match t.mode with
  | Irq | Hybrid -> Nic.set_on_irq nic (fun () -> deliver t)
  | Poll ->
      Nic.disable_irq nic;
      t.polling <- true;
      arm_poll t);
  (* The recovery scan only exists when the fault it recovers from can
     fire — unfaulted runs never arm the timer. *)
  (match t.mode with
  | Poll -> ()
  | Irq | Hybrid ->
      if Plan.armed (Plan.ambient ()) Plan.Nic_irq_lost then
        Sim.arm (Sched.sim t.k) t.slack_timer
          ~at:(Sim.now (Sched.sim t.k) + t.slack_cycles)
          t.slack_cb);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Sim.disarm (Sched.sim t.k) t.poll_timer;
    Sim.disarm (Sched.sim t.k) t.slack_timer
  end

let mode t = t.mode
let polls t = t.polls
let empty_polls t = t.empty_polls
let poll_cycles_spent t = t.poll_cycles_spent
let wasted_cycles t = t.wasted_cycles
let irq_bursts t = t.irq_bursts
let switches t = t.switches
let slack_recovers t = t.slack_recovers
