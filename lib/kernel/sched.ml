open Iw_engine
open Iw_hw

type tstate = New | Runnable | Running | Blocked | Dead

type spawn_spec = {
  sp_name : string;
  sp_cpu : int option;
  sp_fp : bool;
  sp_rt : bool;
}

let default_spec = { sp_name = "thread"; sp_cpu = None; sp_fp = false; sp_rt = false }

let nop () = ()

type thread = {
  tid : int;
  tname : string;
  bound : int;
  fp : bool;
  rt : bool;
  mutable state : tstate;
  mutable pending : pending;
  joiners : thread Queue.t;
  (* Intrusive link for run queues and semaphore wait queues: a thread
     sits on at most one of those at a time, so one field suffices and
     enqueue/dequeue never allocate.  [nil_thread] terminates lists. *)
  mutable wq_next : thread;
  (* Preallocated continuations for the per-request hot path: a thread
     is always dispatched and resumed on its bound CPU, so these can
     be built once at spawn instead of once per grant. *)
  mutable resume_cb : unit -> unit;
  mutable owe_cb : unit -> unit;
  mutable wake_cb : unit -> unit;
}

(* What a thread will do next time a CPU runs it: begin its body, be
   owed [rem] cycles before its coroutine continuation resumes, or —
   for flat threads — be owed [f_rem] cycles before its preallocated
   step function advances its state machine. *)
and pending =
  | Start of (unit -> unit)
  | Owe of owed
  | Flat of flat
  | Nothing

and owed = { mutable rem : int; okind : Cpu.kind; thunk : unit -> Coro.status }

(* A flat thread: the closureiters-style compilation of a coroutine
   into an explicit state struct.  The thread never performs effects;
   [f_step] reads its own state, calls the [flat_*] kernel entry
   points, and returns.  Everything here is allocated once at spawn,
   so steady-state scheduling of a flat thread allocates nothing. *)
and flat = {
  f_th : thread;
  mutable f_rem : int;
  mutable f_kind : Cpu.kind;
  mutable f_step : unit -> unit;
  mutable f_done : unit -> unit;
}

let nil_joiners : thread Queue.t = Queue.create ()

let rec nil_thread =
  {
    tid = -1;
    tname = "<nil>";
    bound = 0;
    fp = false;
    rt = false;
    state = Dead;
    pending = Nothing;
    joiners = nil_joiners;
    wq_next = nil_thread;
    resume_cb = nop;
    owe_cb = nop;
    wake_cb = nop;
  }

(* Allocation-free FIFO of threads via the intrusive [wq_next] link. *)
type tq = { mutable qh : thread; mutable qt : thread; mutable qn : int }

let tq_create () = { qh = nil_thread; qt = nil_thread; qn = 0 }

let tq_push q th =
  th.wq_next <- nil_thread;
  if q.qn = 0 then begin
    q.qh <- th;
    q.qt <- th
  end
  else begin
    q.qt.wq_next <- th;
    q.qt <- th
  end;
  q.qn <- q.qn + 1

(* Returns [nil_thread] when empty. *)
let tq_pop q =
  if q.qn = 0 then nil_thread
  else begin
    let th = q.qh in
    q.qh <- th.wq_next;
    q.qn <- q.qn - 1;
    if q.qn = 0 then q.qt <- nil_thread;
    th.wq_next <- nil_thread;
    th
  end

let tq_is_empty q = q.qn = 0

type mutex = { mutable owner : thread option; mwaiters : thread Queue.t }
type cond = { cwaiters : (thread * mutex) Queue.t }
type semaphore = { mutable count : int; swaiters : tq }

type barrier = {
  parties : int;
  mutable arrived : int;
  bwaiters : thread Queue.t;
}

type t = {
  s : Sim.t;
  plat : Platform.t;
  p : Os.t;
  cpus : Cpu.t array;
  lapics : Lapic.t array;
  rt_q : tq array;
  norm_q : tq array;
  current : thread array; (* nil_thread = idle slot *)
  kick_pending : bool array;
  quantum : int;
  krng : Rng.t;
  obs : Iw_obs.Obs.t;
  mutable kick_cbs : (unit -> unit) array;
  mutable dispatch_cbs : (unit -> unit) array;
  mutable live : int;
  mutable next_tid : int;
  mutable ticking : bool;
}

type _ Coro.Request.t +=
  | R_spawn : spawn_spec * (unit -> unit) -> thread Coro.Request.t
  | R_join : thread -> unit Coro.Request.t
  | R_now : int Coro.Request.t
  | R_self : thread Coro.Request.t
  | R_cpu : int Coro.Request.t
  | R_sleep : int -> unit Coro.Request.t
  | R_lock : mutex -> unit Coro.Request.t
  | R_unlock : mutex -> unit Coro.Request.t
  | R_cond_wait : cond * mutex -> unit Coro.Request.t
  | R_cond_signal : cond -> unit Coro.Request.t
  | R_cond_broadcast : cond -> unit Coro.Request.t
  | R_sem_wait : semaphore -> unit Coro.Request.t
  | R_sem_post : semaphore -> unit Coro.Request.t
  | R_barrier : barrier -> unit Coro.Request.t
  | R_rand : int -> int Coro.Request.t
  | R_overhead : int -> unit Coro.Request.t
  | R_kernel : t Coro.Request.t

let mutex () = { owner = None; mwaiters = Queue.create () }
let cond () = { cwaiters = Queue.create () }

let semaphore ~init =
  if init < 0 then invalid_arg "Sched.semaphore: negative count";
  { count = init; swaiters = tq_create () }

let barrier ~parties =
  if parties <= 0 then invalid_arg "Sched.barrier: parties <= 0";
  { parties; arrived = 0; bwaiters = Queue.create () }

let sim t = t.s
let platform t = t.plat
let personality t = t.p
let cpu t i = t.cpus.(i)
let lapic t i = t.lapics.(i)
let cpu_count t = Array.length t.cpus
let rng t = t.krng
let counters t = t.obs.Iw_obs.Obs.counters
let obs t = t.obs
let live_threads t = t.live
let now t = Sim.now t.s

let total_work_cycles t =
  Array.fold_left (fun acc c -> acc + Cpu.work_cycles c) 0 t.cpus

let total_overhead_cycles t =
  Array.fold_left
    (fun acc c -> acc + Cpu.overhead_cycles c + Cpu.irq_cycles c)
    0 t.cpus

let thread_id th = th.tid
let thread_name th = th.tname
let thread_cpu th = th.bound
let thread_dead th = th.state = Dead

(* ------------------------------------------------------------------ *)
(* Run queues and dispatch                                             *)

let queue_nonempty t cid =
  (not (tq_is_empty t.rt_q.(cid))) || not (tq_is_empty t.norm_q.(cid))

let enqueue t th =
  th.state <- Runnable;
  let q = if th.rt then t.rt_q.(th.bound) else t.norm_q.(th.bound) in
  tq_push q th

(* Returns [nil_thread] when both classes are empty. *)
let pop_queue t cid =
  let th = tq_pop t.rt_q.(cid) in
  if th != nil_thread then th else tq_pop t.norm_q.(cid)

let rec kick ?(delay = 0) t cid =
  if not t.kick_pending.(cid) then begin
    t.kick_pending.(cid) <- true;
    Sim.schedule_after_unit t.s delay t.kick_cbs.(cid)
  end

and maybe_dispatch t cid =
  if (not (Cpu.busy t.cpus.(cid))) && t.current.(cid) == nil_thread then
    dispatch t cid

and dispatch t cid =
  let th = pop_queue t cid in
  if th != nil_thread then begin
    assert (th.state = Runnable);
    th.state <- Running;
    t.current.(cid) <- th;
    Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Context_switches;
    let tr = t.obs.Iw_obs.Obs.trace in
    if tr.Iw_obs.Trace.enabled then
      Iw_obs.Trace.instant tr
        ~name:("switch:" ^ th.tname)
        ~cat:"sched" ~cpu:cid ~ts:(Sim.now t.s) ();
    let pick = if th.rt then t.p.pick_rt else t.p.pick in
    let switch =
      t.p.switch_int + (if th.fp then t.p.switch_fp_extra else 0)
    in
    (* Pick + switch run with interrupts off. *)
    Cpu.grant t.cpus.(cid) ~cycles:(pick + switch) ~kind:Overhead
      ~uninterruptible:true ~on_complete:th.resume_cb
  end

and resume_thread t cid th =
  match th.pending with
  | Start f ->
      th.pending <- Nothing;
      step t cid th (Coro.start f)
  | Owe o when o.rem = 0 ->
      th.pending <- Nothing;
      step t cid th (o.thunk ())
  | Owe o ->
      (* Leave [pending] as Owe so a preemption can rewrite o.rem. *)
      Cpu.grant t.cpus.(cid) ~cycles:o.rem ~kind:o.okind
        ~uninterruptible:false ~on_complete:th.owe_cb
  | Flat f ->
      if f.f_rem = 0 then f.f_step ()
      else
        (* Leave [f_rem] so a preemption can rewrite it. *)
        Cpu.grant t.cpus.(cid) ~cycles:f.f_rem ~kind:f.f_kind
          ~uninterruptible:false ~on_complete:f.f_done
  | Nothing -> assert false

and step t cid th (status : Coro.status) =
  match status with
  | Coro.Done -> finish t cid th
  | Coro.Failed e -> raise e
  | Coro.Paused (Coro.Consumed (n, k)) ->
      th.pending <- Owe { rem = n; okind = Work; thunk = k };
      resume_thread t cid th
  | Coro.Paused (Coro.Yielded k) ->
      th.pending <- Owe { rem = 0; okind = Work; thunk = k };
      if queue_nonempty t cid then begin
        enqueue t th;
        t.current.(cid) <- nil_thread;
        dispatch t cid
      end
      else begin
        (* Nothing else to run: keep going, paying the re-check cost so
           a yield spin-loop still advances virtual time. *)
        th.state <- Running;
        th.pending <-
          Owe { rem = max 1 t.p.pick; okind = Overhead; thunk = k };
        resume_thread t cid th
      end
  | Coro.Paused (Coro.Requested (req, k)) -> handle_request t cid th req k

(* Continue [th] on [cid] after paying [cost] cycles of overhead and
   delivering [v] to the coroutine. *)
and reply : 'v. t -> int -> thread -> int -> 'v -> ('v -> Coro.status) -> unit
    =
 fun t cid th cost v k ->
  if cost = 0 then step t cid th (k v)
  else begin
    th.pending <- Owe { rem = cost; okind = Overhead; thunk = (fun () -> k v) };
    resume_thread t cid th
  end

(* Park [th] (currently on [cid]); its continuation is already stored
   in [th.pending].  The CPU moves on. *)
and block_current t cid th =
  th.state <- Blocked;
  t.current.(cid) <- nil_thread;
  if t.p.block = 0 then dispatch t cid
  else
    Cpu.grant t.cpus.(cid) ~cycles:t.p.block ~kind:Overhead
      ~uninterruptible:true ~on_complete:t.dispatch_cbs.(cid)

and make_runnable t th =
  match th.state with
  | Blocked | New ->
      enqueue t th;
      kick ~delay:t.p.wake_latency t th.bound
  | Runnable | Running | Dead -> ()

and finish t cid th =
  th.state <- Dead;
  t.current.(cid) <- nil_thread;
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Thread_exits;
  let waiters = Queue.fold (fun acc j -> j :: acc) [] th.joiners in
  Queue.clear th.joiners;
  Cpu.grant t.cpus.(cid) ~cycles:t.p.exit ~kind:Overhead ~uninterruptible:true
    ~on_complete:(fun () ->
      List.iter (make_runnable t) (List.rev waiters);
      t.live <- t.live - 1;
      if t.live = 0 then stop_ticks t;
      dispatch t cid)

and create_thread t spec body =
  let cpu_of_spec () =
    match spec.sp_cpu with
    | Some c ->
        if c < 0 || c >= cpu_count t then
          invalid_arg (Printf.sprintf "Sched.spawn: bad cpu %d" c);
        c
    | None ->
        (* Least-loaded placement, ties to the lowest id. *)
        let best = ref 0 and best_load = ref max_int in
        for i = 0 to cpu_count t - 1 do
          let load =
            t.rt_q.(i).qn + t.norm_q.(i).qn
            + (if t.current.(i) != nil_thread then 1 else 0)
          in
          if load < !best_load then begin
            best := i;
            best_load := load
          end
        done;
        !best
  in
  let th =
    {
      tid = t.next_tid;
      tname = spec.sp_name;
      bound = cpu_of_spec ();
      fp = spec.sp_fp;
      rt = spec.sp_rt;
      state = New;
      pending = Start body;
      joiners = Queue.create ();
      wq_next = nil_thread;
      resume_cb = nop;
      owe_cb = nop;
      wake_cb = nop;
    }
  in
  th.resume_cb <- (fun () -> resume_thread t th.bound th);
  th.owe_cb <-
    (fun () ->
      match th.pending with
      | Owe o ->
          th.pending <- Nothing;
          step t th.bound th (o.thunk ())
      | Start _ | Flat _ | Nothing -> assert false);
  th.wake_cb <- (fun () -> make_runnable t th);
  t.next_tid <- t.next_tid + 1;
  t.live <- t.live + 1;
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Spawns;
  th

and handle_request : type a.
    t -> int -> thread -> a Coro.Request.t -> (a -> Coro.status) -> unit =
 fun t cid th req k ->
  match req with
  | R_spawn (spec, body) ->
      let child = create_thread t spec body in
      make_runnable t child;
      reply t cid th t.p.spawn child k
  | R_join target ->
      if target.tid = th.tid then invalid_arg "Sched: join on self";
      if target.state = Dead then reply t cid th t.p.uncontended_sync () k
      else begin
        th.pending <- Owe { rem = 0; okind = Overhead; thunk = (fun () -> k ()) };
        Queue.push th target.joiners;
        block_current t cid th
      end
  | R_now -> step t cid th (k (Sim.now t.s))
  | R_self -> step t cid th (k th)
  | R_cpu -> step t cid th (k cid)
  | R_kernel -> step t cid th (k t)
  | R_rand bound -> step t cid th (k (Rng.int t.krng bound))
  | R_overhead n -> reply t cid th n () k
  | R_sleep dt ->
      th.pending <- Owe { rem = 0; okind = Overhead; thunk = (fun () -> k ()) };
      th.state <- Blocked;
      t.current.(cid) <- nil_thread;
      Sim.schedule_after_unit t.s dt th.wake_cb;
      Cpu.grant t.cpus.(cid) ~cycles:t.p.sleep_arm ~kind:Overhead
        ~uninterruptible:true ~on_complete:t.dispatch_cbs.(cid)
  | R_lock m -> (
      match m.owner with
      | None ->
          m.owner <- Some th;
          reply t cid th t.p.uncontended_sync () k
      | Some _ ->
          Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Lock_contended;
          th.pending <-
            Owe { rem = 0; okind = Overhead; thunk = (fun () -> k ()) };
          Queue.push th m.mwaiters;
          block_current t cid th)
  | R_unlock m -> (
      (match m.owner with
      | Some o when o.tid = th.tid -> ()
      | _ -> invalid_arg "Sched: unlock by non-owner");
      match Queue.take_opt m.mwaiters with
      | None ->
          m.owner <- None;
          reply t cid th t.p.uncontended_sync () k
      | Some w ->
          m.owner <- Some w;
          make_runnable t w;
          reply t cid th t.p.wake () k)
  | R_cond_wait (c, m) ->
      (match m.owner with
      | Some o when o.tid = th.tid -> ()
      | _ -> invalid_arg "Sched: cond_wait without holding the mutex");
      th.pending <- Owe { rem = 0; okind = Overhead; thunk = (fun () -> k ()) };
      Queue.push (th, m) c.cwaiters;
      (* Release the mutex, handing it over if contended. *)
      (match Queue.take_opt m.mwaiters with
      | None -> m.owner <- None
      | Some w ->
          m.owner <- Some w;
          make_runnable t w);
      block_current t cid th
  | R_cond_signal c -> (
      match Queue.take_opt c.cwaiters with
      | None -> reply t cid th t.p.uncontended_sync () k
      | Some (w, m) ->
          wake_into_mutex t w m;
          reply t cid th t.p.wake () k)
  | R_cond_broadcast c ->
      let n = Queue.length c.cwaiters in
      Queue.iter (fun (w, m) -> wake_into_mutex t w m) c.cwaiters;
      Queue.clear c.cwaiters;
      reply t cid th (t.p.uncontended_sync + (n * t.p.wake)) () k
  | R_sem_wait sem ->
      if sem.count > 0 then begin
        sem.count <- sem.count - 1;
        reply t cid th t.p.uncontended_sync () k
      end
      else begin
        th.pending <- Owe { rem = 0; okind = Overhead; thunk = (fun () -> k ()) };
        tq_push sem.swaiters th;
        block_current t cid th
      end
  | R_sem_post sem ->
      let w = tq_pop sem.swaiters in
      if w == nil_thread then begin
        sem.count <- sem.count + 1;
        reply t cid th t.p.uncontended_sync () k
      end
      else begin
        make_runnable t w;
        reply t cid th t.p.wake () k
      end
  | R_barrier b ->
      b.arrived <- b.arrived + 1;
      if b.arrived = b.parties then begin
        b.arrived <- 0;
        let n = Queue.length b.bwaiters in
        Queue.iter (fun w -> make_runnable t w) b.bwaiters;
        Queue.clear b.bwaiters;
        reply t cid th (t.p.uncontended_sync + (n * t.p.wake)) () k
      end
      else begin
        th.pending <- Owe { rem = 0; okind = Overhead; thunk = (fun () -> k ()) };
        Queue.push th b.bwaiters;
        block_current t cid th
      end
  | _ ->
      invalid_arg
        (Printf.sprintf "Sched: unknown request from thread %d (%s)" th.tid
           th.tname)

(* A cond-waiter must re-acquire the mutex before it can run. *)
and wake_into_mutex t w m =
  match m.owner with
  | None ->
      m.owner <- Some w;
      make_runnable t w
  | Some _ -> Queue.push w m.mwaiters

and stop_ticks t =
  if t.ticking then begin
    t.ticking <- false;
    Array.iter Lapic.stop t.lapics
  end

let boot ?obs ?(seed = 42) ?(quantum_us = 1000.0) ~personality plat =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  let s = Sim.create ~seed () in
  let cpus = Array.init plat.Platform.cores (fun id -> Cpu.create ~obs s ~id) in
  let lapics = Array.map (fun c -> Lapic.create s plat c) cpus in
  let t =
    {
      s;
      plat;
      p = personality;
      cpus;
      lapics;
      rt_q = Array.init plat.Platform.cores (fun _ -> tq_create ());
      norm_q = Array.init plat.Platform.cores (fun _ -> tq_create ());
      current = Array.make plat.Platform.cores nil_thread;
      kick_pending = Array.make plat.Platform.cores false;
      quantum = Platform.cycles_of_us plat quantum_us;
      krng = Rng.split (Sim.rng s);
      obs;
      kick_cbs = [||];
      dispatch_cbs = [||];
      live = 0;
      next_tid = 0;
      ticking = false;
    }
  in
  t.kick_cbs <-
    Array.init plat.Platform.cores (fun cid () ->
        t.kick_pending.(cid) <- false;
        maybe_dispatch t cid);
  t.dispatch_cbs <-
    Array.init plat.Platform.cores (fun cid () -> dispatch t cid);
  t

(* ------------------------------------------------------------------ *)
(* Flat threads                                                        *)

(* Kernel entry points for flat threads.  Each mirrors — cost for
   cost, event for event — the corresponding coroutine request path in
   [handle_request], so replacing a coroutine thread with a flat one
   is invisible to the simulation (byte-identical schedules, counters
   and latency tables).  All of them must be called from inside the
   thread's own [f_step], i.e. while it is Running on its bound CPU,
   and none of them allocate. *)

let set_flat_step f step = f.f_step <- step

let flat_thread f = f.f_th

let spawn_flat t ?(spec = default_spec) () =
  let th = create_thread t spec nop in
  let f =
    { f_th = th; f_rem = 0; f_kind = Cpu.Overhead; f_step = nop; f_done = nop }
  in
  f.f_done <-
    (fun () ->
      f.f_rem <- 0;
      f.f_step ());
  th.pending <- Flat f;
  make_runnable t th;
  f

(* Continue the state machine after [cost] cycles of [kind] — the flat
   analogue of [reply] / a Consumed pause.  [cost = 0] re-enters
   [f_step] immediately, exactly as a zero-cost reply steps the
   coroutine inline. *)
let flat_continue t f ~cost ~kind =
  f.f_rem <- cost;
  f.f_kind <- kind;
  resume_thread t f.f_th.bound f.f_th

(* Api.work: a Consumed pause of [n] work cycles ([n <= 0]: nothing). *)
let flat_work t f n = flat_continue t f ~cost:(max 0 n) ~kind:Cpu.Work

(* Api.overhead: R_overhead's reply ([n <= 0]: no request at all). *)
let flat_overhead t f n = flat_continue t f ~cost:(max 0 n) ~kind:Cpu.Overhead

(* R_sleep: park, arm the wake event, pay sleep_arm, move on. *)
let flat_sleep t f dt =
  let th = f.f_th in
  let cid = th.bound in
  f.f_rem <- 0;
  th.state <- Blocked;
  t.current.(cid) <- nil_thread;
  Sim.schedule_after_unit t.s dt th.wake_cb;
  Cpu.grant t.cpus.(cid) ~cycles:t.p.sleep_arm ~kind:Cpu.Overhead
    ~uninterruptible:true ~on_complete:t.dispatch_cbs.(cid)

(* R_sem_wait. *)
let flat_sem_wait t f sem =
  let th = f.f_th in
  if sem.count > 0 then begin
    sem.count <- sem.count - 1;
    flat_continue t f ~cost:t.p.uncontended_sync ~kind:Cpu.Overhead
  end
  else begin
    f.f_rem <- 0;
    tq_push sem.swaiters th;
    block_current t th.bound th
  end

(* The fast half of R_sem_wait on its own: consume an available count
   and pay the uncontended-sync cost, without ever blocking.  The
   caller must have checked [sem_value sem > 0]. *)
let flat_sem_take t f sem =
  assert (sem.count > 0);
  sem.count <- sem.count - 1;
  flat_continue t f ~cost:t.p.uncontended_sync ~kind:Cpu.Overhead

(* R_sem_post. *)
let flat_sem_post t f sem =
  let w = tq_pop sem.swaiters in
  if w == nil_thread then begin
    sem.count <- sem.count + 1;
    flat_continue t f ~cost:t.p.uncontended_sync ~kind:Cpu.Overhead
  end
  else begin
    make_runnable t w;
    flat_continue t f ~cost:t.p.wake ~kind:Cpu.Overhead
  end

(* Semaphore post from outside any thread (host context): no cost to
   charge anywhere, just the state transition. *)
let sem_value sem = sem.count

(* Thread body completed: the flat analogue of [step .. Coro.Done]. *)
let flat_exit t f = finish t f.f_th.bound f.f_th

(* ------------------------------------------------------------------ *)
(* Interrupt-context services                                          *)

let wake_thread t th = make_runnable t th

(* Semaphore post from outside any thread (a device RX event, the
   fleet's network delivery path): no requester to charge, so the
   state transition is free — the woken waiter still pays its own
   wake latency through [make_runnable]. *)
let sem_signal t sem =
  let w = tq_pop sem.swaiters in
  if w == nil_thread then sem.count <- sem.count + 1
  else make_runnable t w

let current_thread t cid =
  let th = t.current.(cid) in
  if th == nil_thread then None else Some th

let stash_preempted t cid remaining =
  let th = t.current.(cid) in
  if th != nil_thread then
    match th.pending with
    | Owe o -> o.rem <- remaining
    | Flat f -> f.f_rem <- remaining
    | Start _ | Nothing ->
        (* Preempted before the first consume: nothing owed. *)
        ()

let resched_or_resume t cid =
  let th = t.current.(cid) in
  if th == nil_thread then maybe_dispatch t cid
  else if queue_nonempty t cid then begin
    Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Preemptions;
    let tr = t.obs.Iw_obs.Obs.trace in
    if tr.Iw_obs.Trace.enabled then
      Iw_obs.Trace.instant tr ~name:"preempt" ~cat:"sched" ~cpu:cid
        ~ts:(Sim.now t.s) ();
    enqueue t th;
    t.current.(cid) <- nil_thread;
    dispatch t cid
  end
  else resume_thread t cid th

(* ------------------------------------------------------------------ *)
(* Ticks and the run loop                                              *)

let start_ticks t =
  if not t.ticking then begin
    t.ticking <- true;
    let ncpus = Array.length t.lapics in
    Array.iteri
      (fun cid l ->
        (* Stagger tick phases across CPUs, as real kernels do. *)
        let phase = max 1 ((cid + 1) * t.quantum / ncpus) in
        Lapic.periodic l ~phase ~period:t.quantum
          ~handler:(fun ~preempted ->
            Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
              Iw_obs.Counter.Ticks;
            if preempted >= 0 then stash_preempted t cid preempted;
            t.p.tick_cost + t.p.tick_noise t.krng)
          ~after:(fun () -> resched_or_resume t cid)
          ())
      t.lapics
  end

let spawn t ?(spec = default_spec) body =
  let th = create_thread t spec body in
  make_runnable t th;
  th

let run ?horizon t =
  start_ticks t;
  if t.live = 0 then stop_ticks t;
  Sim.run ?until:horizon t.s
