open Iw_engine
open Iw_hw

type policy = Steered of int | Spread

type t = {
  k : Sched.t;
  policy : policy;
  period : int;
  handler_cost : int;
  mutable running : bool;
  mutable count : int;
  counts : int array;
}

let deliver t =
  let cpu_id =
    match t.policy with
    | Steered c -> c
    | Spread -> t.count mod Sched.cpu_count t.k
  in
  t.count <- t.count + 1;
  t.counts.(cpu_id) <- t.counts.(cpu_id) + 1;
  let obs = Sched.obs t.k in
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Device_irqs;
  if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"device_irq" ~cat:"kernel"
      ~cpu:cpu_id
      ~ts:(Sim.now (Sched.sim t.k))
      ();
  let plat = Sched.platform t.k in
  Cpu.interrupt (Sched.cpu t.k cpu_id)
    ~dispatch:plat.Platform.costs.interrupt_dispatch
    ~return_cost:plat.Platform.costs.interrupt_return
    ~handler:(fun ~preempted ->
      if preempted >= 0 then Sched.stash_preempted t.k cpu_id preempted;
      t.handler_cost)
    ~after:(fun () -> Sched.resched_or_resume t.k cpu_id)

let start k ~rate_hz ?(handler_cost = 600) policy =
  if rate_hz <= 0.0 then invalid_arg "Device_irq.start: rate <= 0";
  let plat = Sched.platform k in
  let period =
    max 1 (int_of_float (plat.Platform.ghz *. 1e9 /. rate_hz))
  in
  (match policy with
  | Steered c when c < 0 || c >= Sched.cpu_count k ->
      invalid_arg "Device_irq.start: bad steering target"
  | _ -> ());
  let t =
    {
      k;
      policy;
      period;
      handler_cost;
      running = true;
      count = 0;
      counts = Array.make (Sched.cpu_count k) 0;
    }
  in
  let s = Sched.sim k in
  let rec tick () =
    if t.running then begin
      deliver t;
      Sim.schedule_after_unit s t.period tick
    end
  in
  Sim.schedule_after_unit s t.period tick;
  t

let stop t = t.running <- false
let delivered t = t.count
let per_cpu t = Array.copy t.counts
