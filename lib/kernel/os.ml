type t = {
  os_name : string;
  pick : int;
  pick_rt : int;
  switch_int : int;
  switch_fp_extra : int;
  spawn : int;
  exit : int;
  block : int;
  wake : int;
  wake_latency : int;
  sleep_arm : int;
  timer_extra : int;
  timer_jitter : Iw_engine.Rng.t -> int;
  tick_cost : int;
  tick_noise : Iw_engine.Rng.t -> int;
  uncontended_sync : int;
}

let nautilus plat =
  let c = plat.Iw_hw.Platform.costs in
  {
    os_name = "nautilus";
    pick = c.sched_pick;
    pick_rt = c.sched_pick_rt;
    switch_int = c.ctx_save_int + c.ctx_restore_int;
    switch_fp_extra = c.fp_save + c.fp_restore;
    spawn = c.thread_create;
    exit = c.thread_exit;
    block = 150;
    wake = 200;
    wake_latency = c.ipi_latency;
    sleep_arm = c.timer_program;
    (* Kernel-mode callback dispatched straight from the handler. *)
    timer_extra = c.timer_path_direct;
    timer_jitter = (fun _ -> 0);
    tick_cost = c.tick_update;
    tick_noise = (fun _ -> 0);
    uncontended_sync = c.atomic_rmw;
  }

let linux plat =
  let c = plat.Iw_hw.Platform.costs in
  let crossing = c.kernel_entry + c.kernel_exit in
  {
    os_name = "linux";
    pick = c.cfs_pick;
    pick_rt = c.cfs_pick + 150;
    (* Every involuntary switch takes the trap path with speculation
       mitigations in addition to moving register state. *)
    switch_int = c.ctx_save_int + c.ctx_restore_int + crossing;
    switch_fp_extra = c.fp_save + c.fp_restore;
    spawn = c.thread_create_user;
    exit = 2500;
    block = c.futex_wait + crossing;
    wake = c.futex_wake + crossing;
    wake_latency = 1500;
    sleep_arm = c.timer_program + crossing;
    (* hrtimer bookkeeping, softirq, then a signal frame to user space
       and a sigreturn afterwards: the §IV-B event-delivery chain. *)
    timer_extra = c.timer_path_softirq + c.signal_deliver + c.signal_return;
    timer_jitter =
      (fun rng ->
        (* hrtimer slack plus softirq batching and the occasional long
           non-preemptible section; these are what keep user-level
           event delivery from tracking a fine-grained grid (§IV-B). *)
        let slack =
          max 0.0 (Iw_engine.Rng.gaussian rng ~mu:8000.0 ~sigma:8000.0)
        in
        let tail =
          if Iw_engine.Rng.float rng 1.0 < 0.08 then
            Iw_engine.Rng.int rng 90_000
          else 0
        in
        int_of_float slack + tail);
    (* A general-purpose tick carries cputime/RCU/load accounting on
       top of the basic timer update. *)
    tick_cost = c.tick_update + c.tick_accounting_extra;
    tick_noise =
      (fun rng ->
        (* Deferred kernel work rides the tick now and then; any one
           core's stall stretches every barrier it precedes. *)
        if Iw_engine.Rng.float rng 1.0 < 0.30 then
          Iw_engine.Rng.int rng 30_000
        else 0);
    uncontended_sync = c.atomic_rmw;
  }

let linux_rt plat =
  let base = linux plat in
  {
    base with
    os_name = "linux-rt";
    pick = base.pick_rt;
    timer_extra =
      plat.Iw_hw.Platform.costs.timer_path_softirq
      + plat.Iw_hw.Platform.costs.signal_deliver
      + plat.Iw_hw.Platform.costs.signal_return;
    timer_jitter =
      (fun rng ->
        int_of_float
          (max 0.0 (Iw_engine.Rng.gaussian rng ~mu:400.0 ~sigma:250.0)));
  }
