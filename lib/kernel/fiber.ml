open Iw_engine

type mode =
  | Cooperative
  | Compiler_timed of { period : int; check_interval : int; check_cost : int }

type fstate =
  | Not_started of (unit -> unit)
  | Paused of int * (unit -> Coro.status)  (* owed cycles, continuation *)
  | Finished

type fiber = { fname : string; mutable fstate : fstate }

type t = {
  mode : mode;
  obs : Iw_obs.Obs.t;
  switch_cycles : int;
  q : fiber Queue.t;
  mutable since_check : int;  (* work cycles since last timing call *)
  mutable last_switch : int;  (* virtual time of the last switch *)
  mutable switches : int;
  mutable checks : int;
  mutable overhead : int;
}

let create ?obs plat ~mode ~fp =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  let c = plat.Iw_hw.Platform.costs in
  let switch_cycles =
    c.fiber_switch_base + if fp then c.fiber_fp_save + c.fiber_fp_restore else 0
  in
  (match mode with
  | Cooperative -> ()
  | Compiler_timed { period; check_interval; check_cost } ->
      if period <= 0 || check_interval <= 0 || check_cost < 0 then
        invalid_arg "Fiber.create: bad compiler-timed parameters");
  {
    mode;
    obs;
    switch_cycles;
    q = Queue.create ();
    since_check = 0;
    last_switch = 0;
    switches = 0;
    checks = 0;
    overhead = 0;
  }

let spawn t ?(name = "fiber") body =
  let f = { fname = name; fstate = Not_started body } in
  Queue.push f t.q;
  f

let yield () = Coro.yield ()

let switch_cost t = t.switch_cycles
let switches t = t.switches
let timing_checks t = t.checks
let overhead_cycles t = t.overhead

let pay_switch t =
  t.switches <- t.switches + 1;
  t.overhead <- t.overhead + t.switch_cycles;
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Fiber_switches;
  Coro.consume t.switch_cycles;
  t.last_switch <- Api.now ();
  let tr = t.obs.Iw_obs.Obs.trace in
  if tr.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant tr ~name:"fiber_switch" ~cat:"fiber" ~cpu:(-1)
      ~ts:t.last_switch ()

(* Burn [n] fiber-work cycles in carrier-thread context.  Under
   compiler timing, interleave the injected timing calls and preempt
   the fiber when the period has elapsed and another fiber waits.
   Returns [None] when the full quantum was burned, [Some remaining]
   when the fiber was preempted. *)
let burn t n =
  match t.mode with
  | Cooperative ->
      Coro.consume n;
      None
  | Compiler_timed { period; check_interval; check_cost } ->
      let rec go n =
        if n <= 0 then None
        else begin
          let until_check = check_interval - t.since_check in
          if n < until_check then begin
            Coro.consume n;
            t.since_check <- t.since_check + n;
            None
          end
          else begin
            Coro.consume until_check;
            t.since_check <- 0;
            t.checks <- t.checks + 1;
            Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
              Iw_obs.Counter.Timing_checks;
            t.overhead <- t.overhead + check_cost;
            Coro.consume check_cost;
            let n = n - until_check in
            let due = Api.now () - t.last_switch >= period in
            if due && not (Queue.is_empty t.q) then Some n else go n
          end
        end
      in
      go n

let run t =
  t.last_switch <- Api.now ();
  let requeue f owed k =
    f.fstate <- Paused (owed, k);
    Queue.push f t.q
  in
  let rec loop () =
    match Queue.take_opt t.q with
    | None -> ()
    | Some f ->
        resume f;
        loop ()
  and resume f =
    match f.fstate with
    | Finished -> ()
    | Not_started body -> exec f (Coro.start body)
    | Paused (owed, k) -> grant f owed k
  and grant f owed k =
    match burn t owed with
    | None -> exec f (k ())
    | Some remaining ->
        pay_switch t;
        requeue f remaining k
  and exec f (status : Coro.status) =
    match status with
    | Coro.Done -> f.fstate <- Finished
    | Coro.Failed e -> raise e
    | Coro.Paused (Coro.Consumed (n, k)) -> grant f n k
    | Coro.Paused (Coro.Yielded k) ->
        if Queue.is_empty t.q then exec f (k ())
        else begin
          pay_switch t;
          requeue f 0 k
        end
    | Coro.Paused (Coro.Requested (r, k)) ->
        (* Pass kernel requests through the carrier thread. *)
        let v = Coro.request r in
        exec f (k v)
  in
  loop ()
