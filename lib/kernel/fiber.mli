(** Fibers with compiler-based timing (§IV-C).

    A fiber scheduler multiplexes many fibers over the single kernel
    thread that calls {!run}.  Two preemption regimes:

    - [Cooperative]: fibers switch only at explicit {!yield} points.
    - [Compiler_timed]: the compiler has injected timing calls
      throughout the code so that at most [check_interval] cycles pass
      between calls (see {!Iw_passes.Timing_pass} for the real pass);
      each call costs [check_cost] cycles and, when [period] cycles
      have elapsed since the last switch, the timer framework performs
      the "preemption" as an ordinary [yield] — no interrupt
      machinery at all.

    Because fibers never take the interrupt path, a switch costs
    [fiber_switch_base] (+ FP movement when [fp]) instead of
    interrupt dispatch + kernel switch — the Figure 4 claim. *)

type t
type fiber

type mode =
  | Cooperative
  | Compiler_timed of { period : int; check_interval : int; check_cost : int }

val create : ?obs:Iw_obs.Obs.t -> Iw_hw.Platform.t -> mode:mode -> fp:bool -> t
(** [obs] (default: ambient) counts fiber switches and timing checks. *)

val spawn : t -> ?name:string -> (unit -> unit) -> fiber
(** Queue a fiber; it runs once {!run} reaches it. *)

val run : t -> unit
(** Drive all fibers to completion.  Must be called from inside a
    kernel thread (it consumes simulated cycles). *)

val yield : unit -> unit
(** Inside a fiber: cooperative switch point. *)

val switch_cost : t -> int
(** Cycles one fiber-to-fiber switch costs under this configuration
    (excluding the timing-check amortization). *)

val switches : t -> int
(** Total switches performed so far. *)

val timing_checks : t -> int
(** Timing-framework invocations (0 in cooperative mode). *)

val overhead_cycles : t -> int
(** Cycles spent in switches + timing checks. *)
