open Iw_hw

let boot ?seed ?quantum_us plat =
  Sched.boot ?seed ?quantum_us ~personality:(Os.nautilus plat) plat

let address_space plat =
  Iw_mem.Address_space.create plat Iw_mem.Address_space.Identity_large

module Nemo = struct
  let signal k ~target_cpu ~handler =
    let plat = Sched.platform k in
    Ipi.send (Sched.sim k) plat ~target:(Sched.cpu k target_cpu)
      ~handler:(fun ~preempted ->
        if preempted >= 0 then Sched.stash_preempted k target_cpu preempted;
        handler ();
        80)
      ~after:(fun () -> Sched.resched_or_resume k target_cpu)

  let signal_from_thread k ~target_cpu ~handler =
    let plat = Sched.platform k in
    Api.overhead plat.Platform.costs.ipi_send;
    signal k ~target_cpu ~handler
end
