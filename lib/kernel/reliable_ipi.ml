(* Acknowledged IPIs with bounded exponential-backoff resend.

   The wire below (Ipi) may drop, delay, or duplicate under an active
   fault plan.  This is the kernel layer compensating: the handler is
   wrapped to record delivery, and a resend check is scheduled per
   attempt — if the ack has not landed by the timeout, the IPI is sent
   again with a doubled timeout, up to [max_attempts].  Duplicate
   deliveries (from the wire, or from a resend racing a slow first
   copy) run the handler again; callers' handlers must tolerate that,
   which heartbeat-style "check and maybe promote" handlers do.

   With a quiet wire the ack always lands on the first try: the
   resend checks find [acked] set and dissolve into no-op events —
   no simulated cycles, no counter traffic.  (The kernel still only
   arms them when a fault plan is active; see Tpal.) *)

open Iw_engine
open Iw_hw

let max_attempts = 5

(* The first timeout must comfortably exceed a healthy delivery:
   wire latency plus a few interrupt round trips of queueing on a
   busy target. *)
let default_timeout costs =
  (8 * costs.Platform.ipi_latency)
  + (4 * (costs.Platform.interrupt_dispatch + costs.Platform.interrupt_return))

let send ?timeout s plat ~target ~handler ~after =
  let costs = plat.Platform.costs in
  let timeout =
    match timeout with Some t -> t | None -> default_timeout costs
  in
  let obs = Cpu.obs target in
  let acked = ref false in
  let handler ~preempted =
    acked := true;
    handler ~preempted
  in
  let rec attempt n timeout =
    Ipi.send s plat ~target ~handler ~after;
    if n + 1 < max_attempts then
      Sim.schedule_after_unit s timeout (fun () ->
          if not !acked then begin
            Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Ipi_retry;
            if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
              Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"ipi_retry"
                ~cat:"kernel" ~cpu:(Cpu.id target) ~ts:(Sim.now s) ();
            attempt (n + 1) (timeout * 2)
          end)
  in
  attempt 0 timeout

let broadcast ?timeout s plat ~targets ~handler ~after =
  List.iter
    (fun target ->
      let cid = Cpu.id target in
      send ?timeout s plat ~target
        ~handler:(fun ~preempted -> handler cid ~preempted)
        ~after:(fun () -> after cid))
    targets
