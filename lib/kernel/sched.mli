(** The shared scheduler engine.

    A kernel instance owns the simulated CPUs of a platform and runs
    simulated threads (coroutines) on them under a given OS
    personality.  Threads are bound to a CPU at spawn (Nautilus
    style; benchmarks pin threads in the Linux configurations too),
    scheduled round-robin within two classes (real-time first), and
    preempted by a per-CPU scheduler tick.

    Thread code runs inside {!Iw_engine.Coro} coroutines and talks to
    the kernel through the request wrappers in {!Api}. *)

type t
type thread

type spawn_spec = {
  sp_name : string;
  sp_cpu : int option;  (** Binding; [None] = least-loaded CPU. *)
  sp_fp : bool;  (** Context switches move FP/vector state. *)
  sp_rt : bool;  (** Real-time scheduling class. *)
}

val default_spec : spawn_spec

(** {1 Kernel lifecycle} *)

val boot :
  ?obs:Iw_obs.Obs.t ->
  ?seed:int ->
  ?quantum_us:float ->
  personality:Os.t ->
  Iw_hw.Platform.t ->
  t
(** Create a kernel on a fresh simulator.  [quantum_us] (default 1000,
    i.e. 1 ms) is both the scheduler-tick period and the round-robin
    timeslice.  [obs] (default: the domain's ambient context) receives
    every typed counter bump and trace probe from the kernel and its
    CPUs. *)

val spawn : t -> ?spec:spawn_spec -> (unit -> unit) -> thread
(** Create a thread from outside the simulation (initial threads).
    Inside thread code, use {!Api.spawn}. *)

val run : ?horizon:int -> t -> unit
(** Start scheduler ticks and drive the simulation until every thread
    has exited (or the optional horizon is reached).  Idempotent
    ticks stop automatically when the last thread exits. *)

val sim : t -> Iw_engine.Sim.t
val platform : t -> Iw_hw.Platform.t
val personality : t -> Os.t
val cpu : t -> int -> Iw_hw.Cpu.t
val lapic : t -> int -> Iw_hw.Lapic.t
val cpu_count : t -> int
val rng : t -> Iw_engine.Rng.t

val counters : t -> Iw_obs.Counter.set
(** The kernel's typed counter cells (shared with its [obs]). *)

val obs : t -> Iw_obs.Obs.t
(** The observability context this kernel reports into. *)

val live_threads : t -> int
val now : t -> int

val total_work_cycles : t -> int
(** Sum of [Work]-kind cycles across CPUs. *)

val total_overhead_cycles : t -> int
(** Sum of [Overhead]-kind plus interrupt-path cycles across CPUs. *)

(** {1 Thread handles} *)

val thread_id : thread -> int
val thread_name : thread -> string
val thread_cpu : thread -> int
val thread_dead : thread -> bool

(** {1 Synchronization objects}

    Created freely; their blocking operations are requests (see
    {!Api}). *)

type mutex
type cond
type semaphore
type barrier

val mutex : unit -> mutex
val cond : unit -> cond
val semaphore : init:int -> semaphore
val barrier : parties:int -> barrier

(** {1 Requests}

    The request constructors interpreted by this engine.  Thread code
    normally uses {!Api}'s wrappers rather than performing these
    directly. *)

type _ Iw_engine.Coro.Request.t +=
  | R_spawn : spawn_spec * (unit -> unit) -> thread Iw_engine.Coro.Request.t
  | R_join : thread -> unit Iw_engine.Coro.Request.t
  | R_now : int Iw_engine.Coro.Request.t
  | R_self : thread Iw_engine.Coro.Request.t
  | R_cpu : int Iw_engine.Coro.Request.t
  | R_sleep : int -> unit Iw_engine.Coro.Request.t
  | R_lock : mutex -> unit Iw_engine.Coro.Request.t
  | R_unlock : mutex -> unit Iw_engine.Coro.Request.t
  | R_cond_wait : cond * mutex -> unit Iw_engine.Coro.Request.t
  | R_cond_signal : cond -> unit Iw_engine.Coro.Request.t
  | R_cond_broadcast : cond -> unit Iw_engine.Coro.Request.t
  | R_sem_wait : semaphore -> unit Iw_engine.Coro.Request.t
  | R_sem_post : semaphore -> unit Iw_engine.Coro.Request.t
  | R_barrier : barrier -> unit Iw_engine.Coro.Request.t
  | R_rand : int -> int Iw_engine.Coro.Request.t
  | R_overhead : int -> unit Iw_engine.Coro.Request.t
  | R_kernel : t Iw_engine.Coro.Request.t

(** {1 Flat threads}

    A flat thread is a thread compiled by hand into an explicit state
    struct — the closureiters transform applied to this engine.  Its
    step function never performs effects; instead it calls the
    [flat_*] kernel entry points below, each of which mirrors the
    corresponding coroutine request cost-for-cost and event-for-event.
    Swapping a coroutine thread for an equivalent flat thread is
    invisible to the simulation (schedules, counters and latency
    distributions are byte-identical); what changes is the allocation
    profile: everything a flat thread needs is allocated at spawn, so
    steady-state scheduling allocates nothing on the minor heap.

    Contract: every [flat_*] call must be made from inside the
    thread's own step function (i.e. while it is Running), and the
    step function must end each activation with exactly one of them —
    continue ([flat_work] / [flat_overhead] / [flat_continue]), park
    ([flat_sleep] / a blocking [flat_sem_wait]), or die
    ([flat_exit]). *)

type flat

val spawn_flat : t -> ?spec:spawn_spec -> unit -> flat
(** Create a flat thread (from outside the simulation).  Set its step
    function with {!set_flat_step} before the simulator runs. *)

val set_flat_step : flat -> (unit -> unit) -> unit
val flat_thread : flat -> thread

val flat_continue : t -> flat -> cost:int -> kind:Iw_hw.Cpu.kind -> unit
(** Re-enter the step function after [cost] cycles of [kind];
    [cost = 0] re-enters immediately (same-activation), exactly as a
    zero-cost reply steps a coroutine inline. *)

val flat_work : t -> flat -> int -> unit
(** {!Api.work}: owe [n] work cycles, then step again. *)

val flat_overhead : t -> flat -> int -> unit
(** {!Api.overhead}: owe [n] overhead cycles, then step again. *)

val flat_sleep : t -> flat -> int -> unit
(** {!Api.sleep}: park for [dt] cycles; the next step activation runs
    after the wake (wake latency and sleep-arm cost included, as for
    coroutines). *)

val flat_sem_wait : t -> flat -> semaphore -> unit
(** {!Api.sem_wait}: take a count (paying the uncontended-sync cost)
    or park until posted. *)

val flat_sem_take : t -> flat -> semaphore -> unit
(** The non-blocking half of {!flat_sem_wait}: the caller has already
    checked {!sem_value}[ > 0]. *)

val flat_sem_post : t -> flat -> semaphore -> unit
(** {!Api.sem_post}: wake a waiter (wake cost) or bump the count
    (uncontended-sync cost). *)

val sem_value : semaphore -> int
(** Current count (no waiters implied when positive). *)

val flat_exit : t -> flat -> unit
(** The thread's body is done: exit exactly as a finished coroutine
    (exit cost, joiner wakeups, live-count bookkeeping). *)

(** {1 Interrupt-context services}

    For device models and heartbeat drivers: called from interrupt
    handlers or simulator events, never from thread code. *)

val wake_thread : t -> thread -> unit
(** Make a blocked thread runnable (no-op on runnable/dead threads).
    Pays the personality's wake latency before the CPU notices. *)

val sem_signal : t -> semaphore -> unit
(** Post a semaphore from event context (a device RX path, a network
    delivery): wakes one waiter or banks the count.  Unlike
    {!flat_sem_post} there is no requesting thread, so no cost is
    charged to any CPU — the waiter still pays its wake latency. *)

val current_thread : t -> int -> thread option
(** What is (or was) running on a CPU — valid inside interrupt
    handlers to identify the preempted thread. *)

val stash_preempted : t -> int -> int -> unit
(** [stash_preempted t cpu remaining]: record that the running
    thread's current quantum was cut short with [remaining] cycles
    owed.  Interrupt handlers that received [~preempted:(Some r)]
    must call this before the kernel resumes the thread. *)

val resched_or_resume : t -> int -> unit
(** Standard end-of-interrupt path: if higher-priority work is queued,
    preempt the interrupted thread, otherwise resume it.  Use as the
    [after] callback of {!Iw_hw.Cpu.interrupt}. *)
