(** The shared scheduler engine.

    A kernel instance owns the simulated CPUs of a platform and runs
    simulated threads (coroutines) on them under a given OS
    personality.  Threads are bound to a CPU at spawn (Nautilus
    style; benchmarks pin threads in the Linux configurations too),
    scheduled round-robin within two classes (real-time first), and
    preempted by a per-CPU scheduler tick.

    Thread code runs inside {!Iw_engine.Coro} coroutines and talks to
    the kernel through the request wrappers in {!Api}. *)

type t
type thread

type spawn_spec = {
  sp_name : string;
  sp_cpu : int option;  (** Binding; [None] = least-loaded CPU. *)
  sp_fp : bool;  (** Context switches move FP/vector state. *)
  sp_rt : bool;  (** Real-time scheduling class. *)
}

val default_spec : spawn_spec

(** {1 Kernel lifecycle} *)

val boot :
  ?obs:Iw_obs.Obs.t ->
  ?seed:int ->
  ?quantum_us:float ->
  personality:Os.t ->
  Iw_hw.Platform.t ->
  t
(** Create a kernel on a fresh simulator.  [quantum_us] (default 1000,
    i.e. 1 ms) is both the scheduler-tick period and the round-robin
    timeslice.  [obs] (default: the domain's ambient context) receives
    every typed counter bump and trace probe from the kernel and its
    CPUs. *)

val spawn : t -> ?spec:spawn_spec -> (unit -> unit) -> thread
(** Create a thread from outside the simulation (initial threads).
    Inside thread code, use {!Api.spawn}. *)

val run : ?horizon:int -> t -> unit
(** Start scheduler ticks and drive the simulation until every thread
    has exited (or the optional horizon is reached).  Idempotent
    ticks stop automatically when the last thread exits. *)

val sim : t -> Iw_engine.Sim.t
val platform : t -> Iw_hw.Platform.t
val personality : t -> Os.t
val cpu : t -> int -> Iw_hw.Cpu.t
val lapic : t -> int -> Iw_hw.Lapic.t
val cpu_count : t -> int
val rng : t -> Iw_engine.Rng.t

val counters : t -> Iw_obs.Counter.set
(** The kernel's typed counter cells (shared with its [obs]). *)

val obs : t -> Iw_obs.Obs.t
(** The observability context this kernel reports into. *)

val live_threads : t -> int
val now : t -> int

val total_work_cycles : t -> int
(** Sum of [Work]-kind cycles across CPUs. *)

val total_overhead_cycles : t -> int
(** Sum of [Overhead]-kind plus interrupt-path cycles across CPUs. *)

(** {1 Thread handles} *)

val thread_id : thread -> int
val thread_name : thread -> string
val thread_cpu : thread -> int
val thread_dead : thread -> bool

(** {1 Synchronization objects}

    Created freely; their blocking operations are requests (see
    {!Api}). *)

type mutex
type cond
type semaphore
type barrier

val mutex : unit -> mutex
val cond : unit -> cond
val semaphore : init:int -> semaphore
val barrier : parties:int -> barrier

(** {1 Requests}

    The request constructors interpreted by this engine.  Thread code
    normally uses {!Api}'s wrappers rather than performing these
    directly. *)

type _ Iw_engine.Coro.Request.t +=
  | R_spawn : spawn_spec * (unit -> unit) -> thread Iw_engine.Coro.Request.t
  | R_join : thread -> unit Iw_engine.Coro.Request.t
  | R_now : int Iw_engine.Coro.Request.t
  | R_self : thread Iw_engine.Coro.Request.t
  | R_cpu : int Iw_engine.Coro.Request.t
  | R_sleep : int -> unit Iw_engine.Coro.Request.t
  | R_lock : mutex -> unit Iw_engine.Coro.Request.t
  | R_unlock : mutex -> unit Iw_engine.Coro.Request.t
  | R_cond_wait : cond * mutex -> unit Iw_engine.Coro.Request.t
  | R_cond_signal : cond -> unit Iw_engine.Coro.Request.t
  | R_cond_broadcast : cond -> unit Iw_engine.Coro.Request.t
  | R_sem_wait : semaphore -> unit Iw_engine.Coro.Request.t
  | R_sem_post : semaphore -> unit Iw_engine.Coro.Request.t
  | R_barrier : barrier -> unit Iw_engine.Coro.Request.t
  | R_rand : int -> int Iw_engine.Coro.Request.t
  | R_overhead : int -> unit Iw_engine.Coro.Request.t
  | R_kernel : t Iw_engine.Coro.Request.t

(** {1 Interrupt-context services}

    For device models and heartbeat drivers: called from interrupt
    handlers or simulator events, never from thread code. *)

val wake_thread : t -> thread -> unit
(** Make a blocked thread runnable (no-op on runnable/dead threads).
    Pays the personality's wake latency before the CPU notices. *)

val current_thread : t -> int -> thread option
(** What is (or was) running on a CPU — valid inside interrupt
    handlers to identify the preempted thread. *)

val stash_preempted : t -> int -> int -> unit
(** [stash_preempted t cpu remaining]: record that the running
    thread's current quantum was cut short with [remaining] cycles
    owed.  Interrupt handlers that received [~preempted:(Some r)]
    must call this before the kernel resumes the thread. *)

val resched_or_resume : t -> int -> unit
(** Standard end-of-interrupt path: if higher-priority work is queued,
    preempt the interrupted thread, otherwise resume it.  Use as the
    [after] callback of {!Iw_hw.Cpu.interrupt}. *)
