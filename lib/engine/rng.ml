(* splitmix64, carried in two 32-bit limbs.

   The straightforward implementation keeps [Int64] state, but every
   [Int64] operation in non-flambda OCaml allocates a box — a handful
   of minor words per draw, on streams the service plane consults
   several times per request.  Carrying the state as two immediate
   ints and doing the 64-bit adds/multiplies in 16/32-bit limb
   arithmetic produces bit-identical output with zero allocation per
   draw ([int]/[bool]/[raw53] never box; [float] boxes only its
   result, and not even that when the caller is inlined).

   The limb arithmetic is checked against an Int64 reference
   implementation in the test suite; every historical stream is
   reproduced exactly. *)

type t = {
  mutable s_hi : int; (* state, high 32 bits *)
  mutable s_lo : int; (* state, low 32 bits *)
  mutable o_hi : int; (* last output, high 32 bits *)
  mutable o_lo : int; (* last output, low 32 bits *)
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* finalizer constants 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB *)
let c1_hi = 0xBF58476D
let c1_lo = 0x1CE4E5B9
let c2_hi = 0x94D049BB
let c2_lo = 0x133111EB

(* Global seed offset: xor-folded into every stream created after it
   is set, so `--seed N` re-seeds the whole stack without touching the
   per-component seeds scattered through experiment configs.  0 (the
   default) reproduces the historical streams exactly.  Set it once,
   before any worker domains spawn — it is a plain shared ref. *)
let global = ref 0
let set_global_seed s = global := s
let global_seed () = !global

let create ~seed =
  let v = Int64.of_int (seed lxor !global) in
  {
    s_hi = Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL);
    s_lo = Int64.to_int (Int64.logand v 0xFFFFFFFFL);
    o_hi = 0;
    o_lo = 0;
  }

let copy t = { s_hi = t.s_hi; s_lo = t.s_lo; o_hi = t.o_hi; o_lo = t.o_lo }

(* (a * b) mod 2^32, for 0 <= a, b < 2^32.  The 32x16 partial products
   stay under 2^48, inside OCaml's 63-bit int. *)
let[@inline] mul32_low a b =
  ((a * (b land 0xFFFF)) + (((a * (b lsr 16)) land 0xFFFF) lsl 16)) land mask32

(* floor (a * b / 2^32), for 0 <= a, b < 2^32. *)
let[@inline] mul32_high a b =
  let m0 = (a land 0xFFFF) * b in
  let m1 = (a lsr 16) * b in
  let mid = m0 + ((m1 land 0xFFFF) lsl 16) in
  ((m1 lsr 16) + (mid lsr 32)) land mask32

(* Advance the state by the golden gamma and run the splitmix64
   finalizer, leaving the 64-bit output in [o_hi]/[o_lo]. *)
let step t =
  let l = t.s_lo + gamma_lo in
  let s_lo = l land mask32 in
  let s_hi = (t.s_hi + gamma_hi + (l lsr 32)) land mask32 in
  t.s_lo <- s_lo;
  t.s_hi <- s_hi;
  (* z ^= z >>> 30 *)
  let zh = s_hi lxor (s_hi lsr 30) in
  let zl = s_lo lxor ((((s_hi lsl 2) land mask32) lor (s_lo lsr 30))) in
  (* z *= c1 *)
  let ph = (mul32_high zl c1_lo + mul32_low zl c1_hi + mul32_low zh c1_lo) land mask32 in
  let pl = mul32_low zl c1_lo in
  (* z ^= z >>> 27 *)
  let zh = ph lxor (ph lsr 27) in
  let zl = pl lxor ((((ph lsl 5) land mask32) lor (pl lsr 27))) in
  (* z *= c2 *)
  let ph = (mul32_high zl c2_lo + mul32_low zl c2_hi + mul32_low zh c2_lo) land mask32 in
  let pl = mul32_low zl c2_lo in
  (* z ^= z >>> 31 *)
  t.o_hi <- ph lxor (ph lsr 31);
  t.o_lo <- pl lxor ((((ph lsl 1) land mask32) lor (pl lsr 31)))

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.o_hi) 32) (Int64.of_int t.o_lo)

let split t =
  step t;
  { s_hi = t.o_hi; s_lo = t.o_lo; o_hi = 0; o_lo = 0 }

(* Top 62 bits of the next output (historically [bits64 >>> 2], kept
   non-negative in OCaml's int). *)
let[@inline] raw62 t =
  step t;
  (t.o_hi lsl 30) lor (t.o_lo lsr 2)

(* Top 53 bits of the next output — the mantissa source for [float],
   exposed so box-averse callers can do their own (local, unboxed)
   float arithmetic. *)
let[@inline] raw53 t =
  step t;
  (t.o_hi lsl 21) lor (t.o_lo lsr 11)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  raw62 t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(* 2^53 *)
let two53 = 9007199254740992.0

let float t bound = bound *. (float_of_int (raw53 t) /. two53)

let bool t =
  step t;
  t.o_lo land 1 = 1

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~mean =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else -.mean *. log u
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
