type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Global seed offset: xor-folded into every stream created after it
   is set, so `--seed N` re-seeds the whole stack without touching the
   per-component seeds scattered through experiment configs.  0 (the
   default) reproduces the historical streams exactly.  Set it once,
   before any worker domains spawn — it is a plain shared ref. *)
let global = ref 0
let set_global_seed s = global := s
let global_seed () = !global

let create ~seed = { state = Int64.of_int (seed lxor !global) }

let copy t = { state = t.state }

(* splitmix64 finalizer. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's int without going negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 bits of mantissa from the top of the 64-bit output. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~mean =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else -.mean *. log u
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
