(* Packed event keys.

   The simulator totally orders events by [(time, sequence)].  Rather
   than heap tuples through polymorphic [compare], both components are
   packed into one native int: time in the high bits, a per-time
   sequence number in the low bits.  Plain [<] on the packed key is
   then exactly the lexicographic order on the pair, with no
   allocation and no indirect call on the hot path. *)

let seq_bits = 18

let seq_limit = 1 lsl seq_bits

let seq_mask = seq_limit - 1

(* 62 - 18 = 44 usable time bits: ~1.7e13 cycles, hours of simulated
   time at GHz clock rates. *)
let max_time = (1 lsl (62 - seq_bits)) - 1

let pack ~time ~seq =
  if time < 0 || time > max_time then
    invalid_arg (Printf.sprintf "Ekey.pack: time %d out of range" time);
  if seq < 0 || seq >= seq_limit then
    invalid_arg
      (Printf.sprintf
         "Ekey.pack: %d events at time %d exceed the per-time sequence space"
         seq time);
  (time lsl seq_bits) lor seq

let time k = k asr seq_bits

let seq k = k land seq_mask
