(* Hierarchical timer wheel.

   Eight levels of 63 slots each; level [l] slots span [63^l] time
   units, so the wheel covers 63^8 ticks — more than {!Ekey.max_time}.
   Arming, cancelling and firing are O(1); a timer is re-homed to a
   lower level (a "cascade") at most [levels - 1] times over its whole
   life, when the wheel clock reaches the boundary of its slot.

   Slot membership: a timer with deadline [T] lives at the smallest
   level [l] such that [T] and the wheel clock fall in the same
   aligned page of 63 level-[l] slots (page equality at level [l+1]).
   This guarantees (a) its slot index never wraps before it is due and
   (b) for [l >= 1] the slot is strictly after the clock's own slot,
   so [peek] only needs to scan bits above the current index.

   Each slot is a circular doubly-linked list through a sentinel, so
   cancellation unlinks in O(1) and timer records are reusable.
   Per-level occupancy bitmaps (one int, bit per slot) make [peek] a
   handful of mask-and-scan steps.

   Ordering contract: timers are appended at slot tails, and cascades
   preserve list order, so the timers in a level-0 slot — which all
   share one exact deadline — are in arm order.  The caller (Sim)
   packs a global sequence number into each timer's key, making the
   merge with the event heap a plain int comparison. *)

type timer = {
  mutable key : int; (* packed (time, seq); -1 when idle *)
  mutable cb : unit -> unit;
  mutable level : int; (* -1 when idle *)
  mutable slot : int;
  mutable prev : timer;
  mutable next : timer;
}

let nop () = ()

let make_node () =
  let rec s = { key = -1; cb = nop; level = -1; slot = -1; prev = s; next = s } in
  s

let make_timer = make_node

(* [peek] result codes.  A variant ([Nothing | Fire of timer |
   Advance of int]) here would heap-allocate a block on every call,
   and [peek] runs once per fired event; instead it returns one of
   these ints and parks the payload in scratch fields read through
   {!due} / {!boundary}. *)
let nothing = 0

let fire = 1

let advance_over = 2

let levels = 8

let wslots = 63

type t = {
  slots : timer array array; (* [levels][wslots] sentinels *)
  occ : int array; (* per-level occupancy bitmaps *)
  spans : int array; (* spans.(l) = 63^l, length levels+1 *)
  mutable clock : int;
  mutable live : int;
  mutable cascades : int;
  mutable p_due : timer; (* valid after [peek] returned [fire] *)
  mutable p_boundary : int; (* valid after [peek] returned [advance_over] *)
}

let create () =
  let spans = Array.make (levels + 1) 1 in
  for l = 1 to levels do
    spans.(l) <- spans.(l - 1) * wslots
  done;
  {
    slots = Array.init levels (fun _ -> Array.init wslots (fun _ -> make_node ()));
    occ = Array.make levels 0;
    spans;
    clock = 0;
    live = 0;
    cascades = 0;
    p_due = make_node ();
    p_boundary = 0;
  }

let clock t = t.clock

let live t = t.live

let cascades t = t.cascades

let armed tm = tm.level >= 0

let key tm = tm.key

let callback tm = tm.cb

let link t lvl slot tm =
  let s = t.slots.(lvl).(slot) in
  tm.level <- lvl;
  tm.slot <- slot;
  tm.prev <- s.prev;
  tm.next <- s;
  s.prev.next <- tm;
  s.prev <- tm;
  t.occ.(lvl) <- t.occ.(lvl) lor (1 lsl slot)

let unlink t tm =
  tm.prev.next <- tm.next;
  tm.next.prev <- tm.prev;
  let s = t.slots.(tm.level).(tm.slot) in
  if s.next == s then
    t.occ.(tm.level) <- t.occ.(tm.level) land lnot (1 lsl tm.slot);
  tm.prev <- tm;
  tm.next <- tm;
  tm.level <- -1;
  tm.slot <- -1

(* Smallest level whose page (aligned run of 63 slots) contains both
   the deadline and the clock.  Terminates: spans.(levels) exceeds any
   representable time, so level [levels - 1] always qualifies.  The
   search is a top-level loop: an inner closure here would allocate on
   every arm (no flambda). *)
let rec find_level spans time clock l =
  if time / spans.(l + 1) = clock / spans.(l + 1) then l
  else find_level spans time clock (l + 1)

let place t tm =
  let time = Ekey.time tm.key in
  let l = find_level t.spans time t.clock 0 in
  link t l (time / t.spans.(l) mod wslots) tm

let arm t tm ~key cb =
  if tm.level >= 0 then invalid_arg "Timer_wheel.arm: timer already armed";
  if Ekey.time key < t.clock then
    invalid_arg "Timer_wheel.arm: deadline before wheel clock";
  tm.key <- key;
  tm.cb <- cb;
  t.live <- t.live + 1;
  place t tm

let cancel t tm =
  if tm.level >= 0 then begin
    unlink t tm;
    t.live <- t.live - 1;
    tm.key <- -1;
    tm.cb <- nop
  end

(* Remove a due timer (from [Fire]) so the caller can run its
   callback; the callback may immediately re-arm the same record. *)
let take t tm =
  unlink t tm;
  t.live <- t.live - 1;
  tm.key <- -1;
  tm.cb <- nop

(* Count-trailing-zeros as top-level tail recursion: the old
   ref-based loop allocated two ref cells per call, and ctz runs on
   every peek. *)
let rec ctz_fine m i = if m land 1 = 0 then ctz_fine (m lsr 1) (i + 1) else i

let rec ctz_coarse m i =
  if m land 0xFF = 0 then ctz_coarse (m lsr 8) (i + 8) else ctz_fine m i

let ctz m = ctz_coarse m 0

(* Scan levels bottom-up and stop at the first occupied one: level
   [l]'s 63 slots tile exactly the clock's current level-[l+1] slot,
   so every level-[l] candidate precedes every level-[l+1] candidate
   and the first hit is the global minimum. *)
let rec scan t l =
  if l >= levels then failwith "Timer_wheel.peek: live timers but empty scan"
  else begin
    let sp = t.spans.(l) in
    let idx = t.clock / sp mod wslots in
    (* Strictly-later slots only; reaching one's start boundary
       triggers a cascade. *)
    let mask = if idx >= wslots - 1 then 0 else -1 lsl (idx + 1) in
    let m = t.occ.(l) land mask in
    if m <> 0 then begin
      t.p_boundary <- ((t.clock / t.spans.(l + 1) * wslots) + ctz m) * sp;
      advance_over
    end
    else scan t (l + 1)
  end

let peek t =
  if t.live = 0 then nothing
  else begin
    (* Level 0: slots at or after the clock's own; every timer in a
       level-0 slot is due at exactly that slot's time. *)
    let idx0 = t.clock mod wslots in
    let m0 = t.occ.(0) land (-1 lsl idx0) in
    if m0 <> 0 then begin
      t.p_due <- t.slots.(0).(ctz m0).next;
      fire
    end
    else scan t 1
  end

let due t = t.p_due

let boundary t = t.p_boundary

(* Move the clock to boundary [b] (as returned by [peek]'s [Advance];
   more generally any time at or before the next due timer) and
   re-home the timers in each level's now-current slot.  Top-down:
   a cascaded timer always lands at a strictly lower level, and at a
   slot strictly after that level's current one, so a single pass
   settles everything. *)
let rec cascade_list t s tm =
  if tm != s then begin
    let nxt = tm.next in
    unlink t tm;
    t.cascades <- t.cascades + 1;
    place t tm;
    cascade_list t s nxt
  end

let advance t b =
  if b < t.clock then invalid_arg "Timer_wheel.advance: clock runs backwards";
  t.clock <- b;
  for l = levels - 1 downto 1 do
    if t.occ.(l) <> 0 then begin
      let idx = b / t.spans.(l) mod wslots in
      if t.occ.(l) land (1 lsl idx) <> 0 then begin
        let s = t.slots.(l).(idx) in
        cascade_list t s s.next
      end
    end
  done
