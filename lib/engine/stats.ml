type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = { mutable data : float array; mutable size : int }

let create () = { data = [||]; size = 0 }

let add t x =
  if t.size = Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let add_int t x = add t (float_of_int x)

let count t = t.size

let total t =
  let acc = ref 0.0 in
  for i = 0 to t.size - 1 do
    acc := !acc +. t.data.(i)
  done;
  !acc

let mean t = if t.size = 0 then 0.0 else total t /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.size - 1 do
      let d = t.data.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int t.size)
  end

let require_nonempty t name =
  if t.size = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty series" name)

let min_value t =
  require_nonempty t "min_value";
  let m = ref t.data.(0) in
  for i = 1 to t.size - 1 do
    if t.data.(i) < !m then m := t.data.(i)
  done;
  !m

let max_value t =
  require_nonempty t "max_value";
  let m = ref t.data.(0) in
  for i = 1 to t.size - 1 do
    if t.data.(i) > !m then m := t.data.(i)
  done;
  !m

(* Nearest-rank percentile over an already-sorted copy of the samples. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let sorted_samples t =
  let sorted = Array.sub t.data 0 t.size in
  Array.sort Float.compare sorted;
  sorted

let percentile t p =
  require_nonempty t "percentile";
  percentile_sorted (sorted_samples t) p

let summary t =
  require_nonempty t "summary";
  let sorted = sorted_samples t in
  {
    n = t.size;
    mean = mean t;
    stddev = stddev t;
    min = min_value t;
    max = max_value t;
    p50 = percentile_sorted sorted 50.0;
    p90 = percentile_sorted sorted 90.0;
    p99 = percentile_sorted sorted 99.0;
  }

let coefficient_of_variation t =
  let m = mean t in
  if m = 0.0 then 0.0 else stddev t /. m

let samples t = Array.sub t.data 0 t.size

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f" s.n
    s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

module Counters = struct
  type nonrec t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let cell t name =
    match Hashtbl.find_opt t name with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add t name c;
        c

  let add t name k =
    let c = cell t name in
    c := !c + k

  let incr t name = add t name 1

  let get t name = match Hashtbl.find_opt t name with Some c -> !c | None -> 0

  let to_list t =
    Hashtbl.fold (fun name c acc -> (name, !c) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let reset t = Hashtbl.reset t
end
