(** Flat open-addressing hash table with [int] keys.

    A low-overhead replacement for [Hashtbl] on hot paths: keys live
    in a flat int array probed linearly, so lookups do no allocation
    and touch one cache line in the common case.  Not resistant to
    adversarial keys; intended for engine-internal tables (directory
    state, sequence counters).

    Keys [min_int] and [min_int + 1] are reserved as slot markers;
    passing either raises [Invalid_argument]. *)

type 'v t

val create : ?capacity:int -> dummy:'v -> unit -> 'v t
(** [dummy] is returned by {!find} on a miss and passed to {!mutate}'s
    callback for absent keys; it must be a value the caller can
    distinguish from real bindings (or callers must use {!mem}). *)

val length : 'v t -> int

val mem : 'v t -> int -> bool

val find : 'v t -> int -> 'v
(** Returns the table's [dummy] when the key is absent. *)

val set : 'v t -> int -> 'v -> unit

val mutate : 'v t -> int -> ('v -> 'v) -> 'v
(** [mutate t k f] replaces [k]'s binding [v] with [f v] in a single
    probe and returns the {e old} value ([dummy] if absent, in which
    case [f dummy] is inserted). *)

val remove : 'v t -> int -> unit

val iter : (int -> 'v -> unit) -> 'v t -> unit
(** Iteration order is unspecified. *)

val clear : 'v t -> unit
