(** Deterministic pseudo-random number generation for simulations.

    Every stochastic decision in the simulator draws from an explicit
    [Rng.t] so that a run is reproducible from its seed alone.  The
    generator is splitmix64: tiny state, good statistical quality for
    simulation purposes, and trivially splittable. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams (under the same global seed offset). *)

val set_global_seed : int -> unit
(** Set the global seed offset, xor-folded into every stream created
    afterwards.  [0] (the default) reproduces the historical streams.
    Set it once, before spawning worker domains. *)

val global_seed : unit -> int
(** The current global seed offset. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy and the original
    produce identical streams from this point onward. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t].  Use it to give subsystems their own streams so that adding
    draws in one subsystem does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val raw53 : t -> int
(** Top 53 bits of the next output, as a non-negative [int] — the
    mantissa source behind {!float}, exposed for hot paths that want
    to derive floats locally without boxing.
    [float t b = b *. (float_of_int (raw53 t) /. 2.0 ** 53.)]. *)

val raw62 : t -> int
(** Top 62 bits of the next output, as a non-negative [int] — the
    value behind {!int}'s modulo. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on
    an empty array. *)
