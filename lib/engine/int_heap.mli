(** Binary min-heap with monomorphic [int] keys and a parallel payload
    array.  Key comparisons are direct [<] on ints — no closures, no
    polymorphic [compare], no per-element allocation. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Pre-allocates both arrays at [capacity] (default 16).  [dummy]
    fills vacated payload slots so popped values are not retained. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit

val min_key : 'a t -> int
(** @raise Invalid_argument when empty. *)

val top : 'a t -> 'a
(** Payload with the smallest key. @raise Invalid_argument when empty. *)

val pop : 'a t -> 'a
(** Removes and returns the payload with the smallest key.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
