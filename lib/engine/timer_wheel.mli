(** Hierarchical timer wheel: O(1) arm / cancel / fire for
    high-frequency timers (periodic ticks, heartbeats, polling).

    Deadlines are packed {!Ekey} keys, so ties between wheel timers
    and heap events resolve by plain int comparison in the caller.
    The wheel covers the full {!Ekey.max_time} range via 8 levels of
    63 slots; a timer cascades to a lower level at most 7 times in
    its life. *)

type t

type timer
(** Reusable timer record.  Idle until {!arm}ed; idle again after
    {!cancel} or {!take}. *)

val nothing : int
(** [peek] result: no live timers. *)

val fire : int
(** [peek] result: a timer is due — read it with {!due}; its deadline
    is [Ekey.time (key tm)].  Call {!take} before running it. *)

val advance_over : int
(** [peek] result: call [advance t (boundary t)] once the caller's
    clock is allowed to reach it, then {!peek} again. *)

val create : unit -> t

val make_timer : unit -> timer

val clock : t -> int

val live : t -> int

val cascades : t -> int
(** Total timers re-homed to a lower level since [create]. *)

val armed : timer -> bool

val key : timer -> int
(** Packed deadline of an armed timer; [-1] when idle. *)

val callback : timer -> unit -> unit

val arm : t -> timer -> key:int -> (unit -> unit) -> unit
(** @raise Invalid_argument if already armed or the deadline precedes
    the wheel clock. *)

val cancel : t -> timer -> unit
(** O(1) unlink; no-op on an idle timer. *)

val take : t -> timer -> unit
(** Unlink a due timer (obtained from [Fire]) prior to running its
    callback.  The callback may re-arm the same record. *)

val peek : t -> int
(** Returns {!nothing}, {!fire}, or {!advance_over}.  An ordinary
    variant result would heap-allocate per call, and [peek] runs once
    per fired simulator event; the payload sits in scratch fields
    behind {!due} / {!boundary} instead. *)

val due : t -> timer
(** The due timer found by the last [peek] that returned {!fire}. *)

val boundary : t -> int
(** The cascade boundary found by the last [peek] that returned
    {!advance_over}. *)

val advance : t -> int -> unit
(** Move the wheel clock forward and cascade newly current slots.
    Only call with times at or before the next due timer — in
    particular with boundaries from {!peek}. *)
