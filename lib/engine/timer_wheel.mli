(** Hierarchical timer wheel: O(1) arm / cancel / fire for
    high-frequency timers (periodic ticks, heartbeats, polling).

    Deadlines are packed {!Ekey} keys, so ties between wheel timers
    and heap events resolve by plain int comparison in the caller.
    The wheel covers the full {!Ekey.max_time} range via 8 levels of
    63 slots; a timer cascades to a lower level at most 7 times in
    its life. *)

type t

type timer
(** Reusable timer record.  Idle until {!arm}ed; idle again after
    {!cancel} or {!take}. *)

type next =
  | Nothing  (** no live timers *)
  | Fire of timer
      (** head timer of the soonest due slot; its deadline is
          [Ekey.time (key tm)].  Call {!take} before running it. *)
  | Advance of int
      (** next relevant boundary: call [advance t b] once the caller's
          clock is allowed to reach [b], then {!peek} again. *)

val create : unit -> t

val make_timer : unit -> timer

val clock : t -> int

val live : t -> int

val cascades : t -> int
(** Total timers re-homed to a lower level since [create]. *)

val armed : timer -> bool

val key : timer -> int
(** Packed deadline of an armed timer; [-1] when idle. *)

val callback : timer -> unit -> unit

val arm : t -> timer -> key:int -> (unit -> unit) -> unit
(** @raise Invalid_argument if already armed or the deadline precedes
    the wheel clock. *)

val cancel : t -> timer -> unit
(** O(1) unlink; no-op on an idle timer. *)

val take : t -> timer -> unit
(** Unlink a due timer (obtained from [Fire]) prior to running its
    callback.  The callback may re-arm the same record. *)

val peek : t -> next

val advance : t -> int -> unit
(** Move the wheel clock forward and cascade newly current slots.
    Only call with times at or before the next due timer — in
    particular with boundaries from {!peek}. *)
