(* Deterministic discrete-event core — fast path.

   Events are ordered by a packed {!Ekey} int key: time in the high
   bits, a per-time sequence number in the low bits, allocated from a
   shared counter table so heap events and wheel timers interleave in
   exact schedule order.  The queue is a monomorphic {!Int_heap}
   (plain [<] on keys, no tuples, no polymorphic compare); periodic
   and cancellable timers live in a {!Timer_wheel} so per-tick cost is
   O(1) instead of O(log n); events scheduled through the [_unit]
   variants (no handle escapes) are recycled through a free list, so
   steady-state firing allocates nothing. *)

type event = {
  mutable etime : int;
  mutable estate : int; (* 0 = pending, 1 = fired, 2 = cancelled *)
  mutable action : unit -> unit;
  elive : int ref; (* owning simulator's live-event count *)
  recycle : bool; (* no handle escaped: safe to reuse after pop *)
  mutable fnext : event; (* free-list link *)
}

let nop () = ()

let null_live = ref 0

(* Shared inert record: free-list nil and Int_heap dummy. *)
let rec null_event =
  {
    etime = 0;
    estate = 1;
    action = nop;
    elive = null_live;
    recycle = false;
    fnext = null_event;
  }

type t = {
  mutable now : int;
  queue : event Int_heap.t;
  seqs : int Itbl.t; (* time -> next sequence number at that time *)
  live : int ref; (* pending (uncancelled) heap events *)
  wheel : Timer_wheel.t;
  mutable free : event;
  root_rng : Rng.t;
  mutable heap_pushes : int;
  mutable heap_pops : int;
  mutable timer_arms : int;
  mutable timer_fires : int;
}

type timer = {
  wtm : Timer_wheel.timer;
  mutable fallback : event option;
      (* set when the deadline predates the wheel clock and the timer
         had to ride the heap instead *)
}

type stats = {
  heap_pushes : int;
  heap_pops : int;
  timer_arms : int;
  timer_fires : int;
  timer_cascades : int;
}

let create ?(seed = 42) () =
  {
    now = 0;
    queue = Int_heap.create ~capacity:256 ~dummy:null_event ();
    seqs = Itbl.create ~capacity:64 ~dummy:0 ();
    live = ref 0;
    wheel = Timer_wheel.create ();
    free = null_event;
    root_rng = Rng.create ~seed;
    heap_pushes = 0;
    heap_pops = 0;
    timer_arms = 0;
    timer_fires = 0;
  }

let now t = t.now

let rng t = t.root_rng

let stats (t : t) =
  {
    heap_pushes = t.heap_pushes;
    heap_pops = t.heap_pops;
    timer_arms = t.timer_arms;
    timer_fires = t.timer_fires;
    timer_cascades = Timer_wheel.cascades t.wheel;
  }

(* One packed key per scheduled occurrence, heap and wheel alike; the
   shared per-time counters are what make their merge a plain int
   comparison that reproduces global schedule order. *)
(* Top-level so the call passes a static closure (no flambda: a
   literal [fun] argument would allocate on every scheduled event). *)
let succ1 s = s + 1

let alloc_key t at =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %d is in the past (now=%d)" at t.now);
  let seq = Itbl.mutate t.seqs at succ1 in
  Ekey.pack ~time:at ~seq

let push_fresh t key at action =
  let ev =
    {
      etime = at;
      estate = 0;
      action;
      elive = t.live;
      recycle = false;
      fnext = null_event;
    }
  in
  incr t.live;
  t.heap_pushes <- t.heap_pushes + 1;
  Int_heap.push t.queue key ev;
  ev

let push_recycled t key at action =
  let ev =
    if t.free != null_event then begin
      let ev = t.free in
      t.free <- ev.fnext;
      ev.fnext <- null_event;
      ev.etime <- at;
      ev.estate <- 0;
      ev.action <- action;
      ev
    end
    else
      {
        etime = at;
        estate = 0;
        action;
        elive = t.live;
        recycle = true;
        fnext = null_event;
      }
  in
  incr t.live;
  t.heap_pushes <- t.heap_pushes + 1;
  Int_heap.push t.queue key ev;
  ev

let schedule t ~at action = push_fresh t (alloc_key t at) at action

let schedule_after t dt action =
  if dt < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.now + dt) action

let schedule_unit t ~at action = ignore (push_recycled t (alloc_key t at) at action)

let schedule_after_unit t dt action =
  if dt < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_unit t ~at:(t.now + dt) action

let cancel ev =
  if ev.estate = 0 then begin
    ev.estate <- 2;
    decr ev.elive
  end

let cancelled ev = ev.estate = 2

let pending t = !(t.live) + Timer_wheel.live t.wheel

let exhausted t = !(t.live) = 0 && Timer_wheel.live t.wheel = 0

(* Timers. *)

let timer _t = { wtm = Timer_wheel.make_timer (); fallback = None }

let timer_armed tt = Timer_wheel.armed tt.wtm || tt.fallback <> None

let arm t tt ~at cb =
  if timer_armed tt then invalid_arg "Sim.arm: timer already armed";
  let key = alloc_key t at in
  t.timer_arms <- t.timer_arms + 1;
  if at < Timer_wheel.clock t.wheel then begin
    (* The wheel clock may sit ahead of [now] when a bounded [run]
       stopped just after cascading toward a then-due timer.  Ride the
       heap for this (rare) arm; the wheel never runs backwards. *)
    let ev =
      push_recycled t key at (fun () ->
          tt.fallback <- None;
          t.timer_fires <- t.timer_fires + 1;
          cb ())
    in
    tt.fallback <- Some ev
  end
  else Timer_wheel.arm t.wheel tt.wtm ~key cb

let arm_after t tt dt cb =
  if dt < 0 then invalid_arg "Sim.arm_after: negative delay";
  arm t tt ~at:(t.now + dt) cb

let disarm t tt =
  if Timer_wheel.armed tt.wtm then Timer_wheel.cancel t.wheel tt.wtm
  else
    match tt.fallback with
    | Some ev ->
        cancel ev;
        tt.fallback <- None
    | None -> ()

(* Firing. *)

let release t ev =
  if ev.recycle then begin
    ev.action <- nop;
    ev.fnext <- t.free;
    t.free <- ev
  end

(* Drop cancelled events off the heap top so horizon checks see the
   next event that will actually fire. *)
let rec purge t =
  if not (Int_heap.is_empty t.queue) then begin
    let ev = Int_heap.top t.queue in
    if ev.estate <> 0 then begin
      ignore (Int_heap.pop t.queue);
      t.heap_pops <- t.heap_pops + 1;
      release t ev;
      purge t
    end
  end

let advance_now t time =
  if time > t.now then begin
    (* The counter entry for the departed time can never be consulted
       again (scheduling in the past is rejected). *)
    Itbl.remove t.seqs t.now;
    t.now <- time
  end

(* Fire the single next due thing — heap event or wheel timer — at or
   before [horizon], advancing the wheel clock through cascade
   boundaries on the way.  Returns [false], leaving pending state
   untouched, when nothing is due within the horizon. *)
let rec fire_one t ~horizon =
  purge t;
  let hkey =
    if Int_heap.is_empty t.queue then max_int else Int_heap.min_key t.queue
  in
  let code = Timer_wheel.peek t.wheel in
  if code = Timer_wheel.nothing then hkey <> max_int && fire_heap t ~horizon
  else if code = Timer_wheel.fire then begin
    let wtm = Timer_wheel.due t.wheel in
    if Timer_wheel.key wtm < hkey then fire_wheel t wtm ~horizon
    else fire_heap t ~horizon
  end
  else begin
    let b = Timer_wheel.boundary t.wheel in
    let htime = if hkey = max_int then max_int else Ekey.time hkey in
    if b <= htime && b <= horizon then begin
      Timer_wheel.advance t.wheel b;
      fire_one t ~horizon
    end
    else hkey <> max_int && fire_heap t ~horizon
  end

and fire_heap t ~horizon =
  let time = Ekey.time (Int_heap.min_key t.queue) in
  time <= horizon
  && begin
       let ev = Int_heap.pop t.queue in
       t.heap_pops <- t.heap_pops + 1;
       ev.estate <- 1;
       decr t.live;
       advance_now t time;
       let action = ev.action in
       release t ev;
       action ();
       true
     end

and fire_wheel t wtm ~horizon =
  let time = Ekey.time (Timer_wheel.key wtm) in
  time <= horizon
  && begin
       let cb = Timer_wheel.callback wtm in
       Timer_wheel.take t.wheel wtm;
       t.timer_fires <- t.timer_fires + 1;
       advance_now t time;
       cb ();
       true
     end

let step t = fire_one t ~horizon:max_int

let run ?until ?max_events t =
  let horizon = match until with None -> max_int | Some h -> h in
  match max_events with
  | None -> while fire_one t ~horizon do () done
  | Some m ->
      let fired = ref 0 in
      while !fired < m && fire_one t ~horizon do
        incr fired
      done
