(** Deterministic discrete-event simulation core.

    Virtual time is an integer count of cycles.  Events are totally
    ordered by [(time, sequence-number)] — packed into one int key
    ({!Ekey}) — so two runs of the same program with the same seed
    produce identical schedules.  Events may be cancelled after being
    scheduled (cancellation is lazy: the entry stays in the queue but
    its action is skipped).

    High-frequency periodic work should use the {!timer} API, backed
    by a hierarchical {!Timer_wheel}: arming, firing and disarming a
    timer is O(1) and reuses one record, where a heap event costs
    O(log n) and (for the handle-returning [schedule]) an allocation. *)

type t

type event
(** Handle to a scheduled event, usable for cancellation. *)

type timer
(** Reusable timer: repeatedly armed/disarmed without allocation. *)

type stats = {
  heap_pushes : int;  (** events pushed on the binary heap *)
  heap_pops : int;  (** events popped (fired or purged) off the heap *)
  timer_arms : int;  (** timer arms (wheel or fallback) *)
  timer_fires : int;  (** timer callbacks fired *)
  timer_cascades : int;  (** wheel timers re-homed to a lower level *)
}

val create : ?seed:int -> unit -> t
(** Fresh simulator at time 0.  [seed] (default 42) seeds the
    simulator's root RNG. *)

val now : t -> int
(** Current virtual time, in cycles. *)

val rng : t -> Rng.t
(** The simulator's root RNG.  Subsystems should [Rng.split] it. *)

val stats : t -> stats
(** Cumulative event-queue traffic counters. *)

val schedule : t -> at:int -> (unit -> unit) -> event
(** [schedule t ~at f] runs [f] at virtual time [at].  @raise
    Invalid_argument if [at] is in the past. *)

val schedule_after : t -> int -> (unit -> unit) -> event
(** [schedule_after t dt f] = [schedule t ~at:(now t + dt) f]. *)

val schedule_unit : t -> at:int -> (unit -> unit) -> unit
(** Like {!schedule} but returns no handle; the event record is
    recycled through a free list after it fires, so fire-and-forget
    scheduling does not allocate in steady state. *)

val schedule_after_unit : t -> int -> (unit -> unit) -> unit
(** [schedule_after_unit t dt f] = [schedule_unit t ~at:(now t + dt) f]. *)

val cancel : event -> unit
(** Cancel a pending event.  Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val cancelled : event -> bool

val timer : t -> timer
(** Fresh idle timer. *)

val arm : t -> timer -> at:int -> (unit -> unit) -> unit
(** Arm a timer to fire once at [at].  @raise Invalid_argument if the
    timer is already armed or [at] is in the past.  Re-arming from
    inside the timer's own callback is the intended idiom for
    periodic work. *)

val arm_after : t -> timer -> int -> (unit -> unit) -> unit
(** [arm_after t tm dt f] = [arm t tm ~at:(now t + dt) f]. *)

val disarm : t -> timer -> unit
(** O(1) cancel; no-op on an idle timer. *)

val timer_armed : timer -> bool

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events plus armed timers.
    O(1). *)

val step : t -> bool
(** Fire the next event or timer.  Returns [false] when nothing is
    pending. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the event queue.  [until] stops the clock at that time (the
    event at [until] itself still fires, later ones do not and remain
    queued); [max_events] bounds the number of fired events (guards
    against accidental non-termination in tests). *)

val exhausted : t -> bool
(** True when no live events or armed timers remain.  O(1). *)
