(* Binary min-heap specialized to int keys.

   The generic [Heap] costs a polymorphic-compare (or closure) call
   per sift step and boxes nothing but still pays an indirect call;
   here keys are a flat int array compared with [<] directly, and
   payloads sit in a parallel array.  This is the simulator's event
   queue. *)

type 'a t = {
  dummy : 'a;
  mutable keys : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let create ?(capacity = 16) ~dummy () =
  let cap = max 1 capacity in
  { dummy; keys = Array.make cap 0; vals = Array.make cap dummy; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.keys * 2 in
  let keys = Array.make cap 0 and vals = Array.make cap t.dummy in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

(* Sift loops are top-level tail recursions: a [ref]-based while loop
   would heap-allocate the ref cells on every push/pop (no flambda),
   and the event queue sees millions of both per run. *)
let rec sift_up keys vals k v i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Array.unsafe_get keys parent > k then begin
      Array.unsafe_set keys i (Array.unsafe_get keys parent);
      Array.unsafe_set vals i (Array.unsafe_get vals parent);
      sift_up keys vals k v parent
    end
    else begin
      Array.unsafe_set keys i k;
      Array.unsafe_set vals i v
    end
  end
  else begin
    Array.unsafe_set keys i k;
    Array.unsafe_set vals i v
  end

let push t k v =
  if t.size = Array.length t.keys then grow t;
  let i = t.size in
  t.size <- i + 1;
  sift_up t.keys t.vals k v i

let min_key t =
  if t.size = 0 then invalid_arg "Int_heap.min_key: empty";
  t.keys.(0)

let top t =
  if t.size = 0 then invalid_arg "Int_heap.top: empty";
  t.vals.(0)

let rec sift_down keys vals n k v i =
  let l = (2 * i) + 1 in
  if l >= n then begin
    Array.unsafe_set keys i k;
    Array.unsafe_set vals i v
  end
  else begin
    let r = l + 1 in
    let c =
      if r < n && Array.unsafe_get keys r < Array.unsafe_get keys l then r
      else l
    in
    if Array.unsafe_get keys c < k then begin
      Array.unsafe_set keys i (Array.unsafe_get keys c);
      Array.unsafe_set vals i (Array.unsafe_get vals c);
      sift_down keys vals n k v c
    end
    else begin
      Array.unsafe_set keys i k;
      Array.unsafe_set vals i v
    end
  end

let pop t =
  if t.size = 0 then invalid_arg "Int_heap.pop: empty";
  let keys = t.keys and vals = t.vals in
  let res = vals.(0) in
  let n = t.size - 1 in
  t.size <- n;
  let k = keys.(n) and v = vals.(n) in
  vals.(n) <- t.dummy;
  if n > 0 then
    (* Sift the last element down from the root. *)
    sift_down keys vals n k v 0;
  res

let clear t =
  Array.fill t.vals 0 t.size t.dummy;
  t.size <- 0
