type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  capacity : int; (* requested pre-size; applied at first push *)
  mutable keys : 'k array;
  mutable vals : 'v array;
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; capacity = max 1 capacity; keys = [||]; vals = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* The element type is polymorphic with no dummy value, so the arrays
   can only be materialized once a first element exists. *)
let grow t k v =
  let cap = max t.capacity (2 * Array.length t.keys) in
  let keys = Array.make cap k and vals = Array.make cap v in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.keys.(i) t.keys.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.keys.(l) t.keys.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.keys.(r) t.keys.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t k v =
  if t.size = Array.length t.keys then grow t k v;
  t.keys.(t.size) <- k;
  t.vals.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    Some (k, v)
  end

let clear t = t.size <- 0

let to_sorted_list t =
  let copy =
    {
      cmp = t.cmp;
      capacity = t.capacity;
      keys = Array.sub t.keys 0 t.size;
      vals = Array.sub t.vals 0 t.size;
      size = t.size;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []
