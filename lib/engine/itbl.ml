(* Open-addressing hash table with int keys.

   Stdlib [Hashtbl] allocates a bucket cell per binding and chases
   bucket lists on every probe; on the simulator's hottest tables
   (directory state keyed by cache line, per-time sequence counters)
   that shows up directly in experiment wall time.  This table keeps
   keys in a flat int array with linear probing, so a lookup is a
   multiply, a mask and (usually) one array read. *)

type 'v t = {
  dummy : 'v;
  mutable keys : int array;
  mutable vals : 'v array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int; (* live bindings *)
  mutable used : int; (* live + tombstones *)
}

(* Two reserved keys mark empty and deleted slots.  User keys this
   close to min_int do not occur (they would not survive arithmetic
   anywhere in the engine anyway). *)
let empty_key = min_int

let tomb_key = min_int + 1

let check_key k =
  if k = empty_key || k = tomb_key then invalid_arg "Itbl: reserved key"

let fib = 0x2545F4914F6CDD1D (* 64-bit mix constant, truncated to 63 bits *)

let slot_of t k = (k * fib) land t.mask

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

let create ?(capacity = 16) ~dummy () =
  let cap = ceil_pow2 (max 8 capacity) 8 in
  {
    dummy;
    keys = Array.make cap empty_key;
    vals = Array.make cap dummy;
    mask = cap - 1;
    live = 0;
    used = 0;
  }

let length t = t.live

(* Returns the slot holding [k], or (-slot - 1) where the probe ended
   on an empty slot ([k] absent). *)
let find_slot t k =
  let mask = t.mask in
  let keys = t.keys in
  let rec probe i =
    let kk = Array.unsafe_get keys i in
    if kk = k then i
    else if kk = empty_key then -i - 1
    else probe ((i + 1) land mask)
  in
  probe (slot_of t k)

let mem t k =
  check_key k;
  find_slot t k >= 0

let find t k =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then Array.unsafe_get t.vals i else t.dummy

let iter f t =
  Array.iteri
    (fun i k -> if k > tomb_key then f k t.vals.(i))
    t.keys

let resize t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  t.used <- t.live;
  let mask = t.mask in
  Array.iteri
    (fun i k ->
      if k > tomb_key then begin
        let rec probe j =
          if t.keys.(j) = empty_key then begin
            t.keys.(j) <- k;
            t.vals.(j) <- old_vals.(i)
          end
          else probe ((j + 1) land mask)
        in
        probe (slot_of t k)
      end)
    old_keys

(* Insert at the end of a failed probe, recycling a tombstone on the
   probe path when one exists. *)
let insert t k v first_empty =
  let mask = t.mask in
  let keys = t.keys in
  let rec tomb_on_path i =
    let kk = Array.unsafe_get keys i in
    if i = first_empty then i
    else if kk = tomb_key then i
    else tomb_on_path ((i + 1) land mask)
  in
  let i = tomb_on_path (slot_of t k) in
  if keys.(i) = empty_key then t.used <- t.used + 1;
  keys.(i) <- k;
  t.vals.(i) <- v;
  t.live <- t.live + 1;
  if 3 * t.used > 2 * (mask + 1) then resize t

let set t k v =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then t.vals.(i) <- v else insert t k v (-i - 1)

let mutate t k f =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then begin
    let old = Array.unsafe_get t.vals i in
    t.vals.(i) <- f old;
    old
  end
  else begin
    insert t k (f t.dummy) (-i - 1);
    t.dummy
  end

let remove t k =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then begin
    t.keys.(i) <- tomb_key;
    t.vals.(i) <- t.dummy;
    t.live <- t.live - 1
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.live <- 0;
  t.used <- 0
