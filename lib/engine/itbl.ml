(* Open-addressing hash table with int keys.

   Stdlib [Hashtbl] allocates a bucket cell per binding and chases
   bucket lists on every probe; on the simulator's hottest tables
   (directory state keyed by cache line, per-time sequence counters)
   that shows up directly in experiment wall time.  This table keeps
   keys in a flat int array with linear probing, so a lookup is a
   multiply, a mask and (usually) one array read. *)

type 'v t = {
  dummy : 'v;
  mutable keys : int array;
  mutable vals : 'v array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int; (* live bindings *)
  mutable used : int; (* live + tombstones *)
  (* Clean second buffer swapped in by same-capacity rehashes (see
     [resize]); empty until the first one. *)
  mutable spare_keys : int array;
  mutable spare_vals : 'v array;
}

(* Two reserved keys mark empty and deleted slots.  User keys this
   close to min_int do not occur (they would not survive arithmetic
   anywhere in the engine anyway). *)
let empty_key = min_int

let tomb_key = min_int + 1

let check_key k =
  if k = empty_key || k = tomb_key then invalid_arg "Itbl: reserved key"

let fib = 0x2545F4914F6CDD1D (* 64-bit mix constant, truncated to 63 bits *)

let slot_of t k = (k * fib) land t.mask

let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

let create ?(capacity = 16) ~dummy () =
  let cap = ceil_pow2 (max 8 capacity) 8 in
  {
    dummy;
    keys = Array.make cap empty_key;
    vals = Array.make cap dummy;
    mask = cap - 1;
    live = 0;
    used = 0;
    spare_keys = [||];
    spare_vals = [||];
  }

let length t = t.live

(* Returns the slot holding [k], or (-slot - 1) where the probe ended
   on an empty slot ([k] absent).  The probe loop is a top-level
   function on purpose: without flambda, an inner [let rec] that
   captures [keys]/[mask] is a heap-allocated closure on every call,
   and this is the hottest function in the engine. *)
let rec probe_slot keys mask k i =
  let kk = Array.unsafe_get keys i in
  if kk = k then i
  else if kk = empty_key then -i - 1
  else probe_slot keys mask k ((i + 1) land mask)

let find_slot t k = probe_slot t.keys t.mask k (slot_of t k)

let mem t k =
  check_key k;
  find_slot t k >= 0

let find t k =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then Array.unsafe_get t.vals i else t.dummy

let iter f t =
  Array.iteri
    (fun i k -> if k > tomb_key then f k t.vals.(i))
    t.keys

(* Triggered when live + tombstones pass 2/3 of capacity.

   The capacity is sized for the LIVE population, never blindly
   doubled: on churn-heavy tables (the simulator's per-time sequence
   counters see one insert and one remove per distinct event time,
   forever) the slots are almost all tombstones, and doubling every
   2/3·cap removals would grow capacity — and heap traffic — without
   bound.  Such tables instead rehash at their current capacity,
   ping-ponging between two buffers kept on the table (the retired
   buffer is wiped and becomes the next spare), so steady-state
   tombstone collection allocates nothing at all.  A genuinely growing
   table (live ≈ used) still doubles; capacity never shrinks. *)
let rec rehash_ins keys vals mask k v j =
  if Array.unsafe_get keys j = empty_key then begin
    Array.unsafe_set keys j k;
    Array.unsafe_set vals j v
  end
  else rehash_ins keys vals mask k v ((j + 1) land mask)

let resize t =
  let old_keys = t.keys and old_vals = t.vals in
  let cur = t.mask + 1 in
  let need = ceil_pow2 (max 8 (3 * (t.live + 1))) 8 in
  let cap = if need > cur then need else cur in
  if Array.length t.spare_keys = cap then begin
    (* Spares are pre-wiped when retired below. *)
    t.keys <- t.spare_keys;
    t.vals <- t.spare_vals
  end
  else begin
    t.keys <- Array.make cap empty_key;
    t.vals <- Array.make cap t.dummy
  end;
  t.mask <- cap - 1;
  t.used <- t.live;
  let keys = t.keys and vals = t.vals and mask = t.mask in
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k > tomb_key then
      rehash_ins keys vals mask k (Array.unsafe_get old_vals i)
        ((k * fib) land mask)
  done;
  (* Retire the old buffer as a clean spare so the next same-size
     rehash is allocation-free (and stale values don't pin their
     referents). *)
  Array.fill old_keys 0 (Array.length old_keys) empty_key;
  Array.fill old_vals 0 (Array.length old_vals) t.dummy;
  t.spare_keys <- old_keys;
  t.spare_vals <- old_vals

(* Insert at the end of a failed probe, recycling a tombstone on the
   probe path when one exists.  Top-level loop for the same reason as
   [probe_slot]. *)
let rec tomb_on_path keys mask first_empty i =
  let kk = Array.unsafe_get keys i in
  if i = first_empty then i
  else if kk = tomb_key then i
  else tomb_on_path keys mask first_empty ((i + 1) land mask)

let insert t k v first_empty =
  let mask = t.mask in
  let keys = t.keys in
  let i = tomb_on_path keys mask first_empty (slot_of t k) in
  if keys.(i) = empty_key then t.used <- t.used + 1;
  keys.(i) <- k;
  t.vals.(i) <- v;
  t.live <- t.live + 1;
  if 3 * t.used > 2 * (mask + 1) then resize t

let set t k v =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then t.vals.(i) <- v else insert t k v (-i - 1)

let mutate t k f =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then begin
    let old = Array.unsafe_get t.vals i in
    t.vals.(i) <- f old;
    old
  end
  else begin
    insert t k (f t.dummy) (-i - 1);
    t.dummy
  end

let remove t k =
  check_key k;
  let i = find_slot t k in
  if i >= 0 then begin
    t.keys.(i) <- tomb_key;
    t.vals.(i) <- t.dummy;
    t.live <- t.live - 1
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.live <- 0;
  t.used <- 0
