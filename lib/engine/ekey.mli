(** Packed [(time, sequence)] event keys.

    One native int holds the event time in its high bits and a
    per-time sequence number in the low {!seq_bits} bits, so the
    simulator's total event order is plain integer [<]. *)

val seq_bits : int

val seq_limit : int
(** [2 ^ seq_bits]: max events sharing one timestamp. *)

val max_time : int
(** Largest representable time. *)

val pack : time:int -> seq:int -> int
(** @raise Invalid_argument when either component is out of range. *)

val time : int -> int

val seq : int -> int
