(** A TLB reach model.

    Nautilus identity-maps all of memory with the largest page size at
    boot: if the TLB's reach covers the physical address space, there
    are no misses after startup, and no page faults ever (§III).
    Demand-paged stacks take a miss whenever a touched page falls
    outside the hot set the TLB can hold, and a fault on first touch.

    The model is analytic over an access profile rather than
    trace-driven: workloads report (footprint, accesses, locality) and
    the TLB answers with miss/fault counts and cycle cost.  This is
    the granularity at which the paper's §I "example limitation"
    argument operates. *)

type t

type profile = {
  footprint_kb : int;  (** Distinct memory touched. *)
  accesses : int;  (** Total memory accesses. *)
  locality : float;
      (** Fraction of accesses to the hot subset that fits the TLB
          (0.0 = uniform sweep, 1.0 = perfectly resident). *)
}

val create : Platform.t -> page_kb:int -> t
(** A TLB of [Platform.tlb_entries] entries mapping [page_kb] pages. *)

val reach_kb : t -> int

val misses : t -> profile -> int
(** Expected TLB misses for the profile: zero when the footprint fits
    the reach; otherwise non-hot accesses miss in proportion to the
    uncovered footprint fraction. *)

val first_touch_faults : t -> profile -> int
(** Demand-paging minor faults: one per resident page on first touch
    (zero under identity mapping — query the identity config). *)

val access_overhead_cycles :
  ?obs:Iw_obs.Obs.t -> t -> Platform.t -> profile -> demand_paged:bool -> int
(** Total extra cycles the memory system charges this profile:
    miss walks, plus fault service when [demand_paged].  Miss/fault
    counts are added to [obs] (default: the ambient context). *)
