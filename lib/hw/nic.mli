(** Simulated NIC: RX/TX descriptor rings, batched receive, and an
    ITR-style interrupt-moderation register.

    The device is pure event-context state on one machine's simulator:
    the wire pushes frames into the RX ring ({!rx_push}), the driver
    drains them ({!rx_peek_a}/{!rx_consume}) either from an interrupt
    handler or from a poll loop, and completions queue on the TX ring
    which drains asynchronously at a fixed per-descriptor cost.

    Interrupt semantics follow the ixy/82599 model: asserting the RX
    interrupt auto-masks it (IMS-style), so the device stays quiet
    until the driver re-enables via {!enable_irq}; re-assertion is
    then subject to the ITR register — a minimum inter-interrupt gap
    in virtual cycles (0 = unmoderated), enforced with a deterministic
    one-shot timer rather than wall-clock state.

    Fault hooks (ambient {!Iw_faults.Plan} captured at creation):
    [Nic_rx_drop] loses a frame before it reaches the ring,
    [Nic_ring_overrun] makes the ring spuriously report full, and
    [Nic_irq_lost] swallows an asserted interrupt after the auto-mask
    — stranding the ring until a layer above notices ({!irq_enabled}
    false, {!irq_inflight} false, {!rx_avail} > 0 is exactly the
    stranded state a driver slack timer can test for). *)

(** Flat int-array descriptor ring: three words per slot (two payload
    words plus the enqueue timestamp), power-of-two capacity, free-
    running head/tail indices.  Slots are recycled in place — no
    allocation after [create]. *)
module Ring : sig
  type t

  val create : int -> t
  (** [create cap] rounds [cap] up to a power of two.  @raise
      Invalid_argument if [cap <= 0]. *)

  val capacity : t -> int
  val length : t -> int
  val is_empty : t -> bool
  val is_full : t -> bool

  val push : t -> a:int -> b:int -> ts:int -> bool
  (** False (and one overrun accounted) when the ring is full. *)

  val peek_a : t -> int
  val peek_b : t -> int
  val peek_ts : t -> int
  (** Oldest undelivered slot.  @raise Invalid_argument when empty. *)

  val pop : t -> unit
  (** Consume the oldest slot.  @raise Invalid_argument when empty. *)

  val overruns : t -> int
  (** Pushes rejected because the ring was full. *)
end

type config = {
  nic_ring : int;  (** RX and TX descriptor count (rounded to pow2) *)
  nic_itr_cycles : int;
      (** ITR register: minimum gap between interrupt assertions, in
          cycles; 0 = assert on every enabled-with-work edge *)
  nic_tx_cycles : int;  (** per-descriptor TX drain cost, in cycles *)
}

val default : config

type t

val create : ?obs:Iw_obs.Obs.t -> sim:Iw_engine.Sim.t -> config -> t
(** [obs] defaults to the ambient context; the ambient fault plan is
    captured here, like [Exec]. *)

val set_on_irq : t -> (unit -> unit) -> unit
(** Driver hook: called from event context when the device asserts its
    (auto-masked) RX interrupt. *)

val set_on_tx : t -> (a:int -> b:int -> unit) -> unit
(** Wire hook: called as each TX descriptor finishes serializing. *)

val itr : t -> int
val set_itr : t -> int -> unit

val rx_push : t -> a:int -> b:int -> bool
(** A frame arrives from the wire.  Draws the RX fault kinds, then
    lands in the RX ring (true) or is dropped (false: fault, injected
    overrun, or genuinely full ring).  May assert the interrupt. *)

val rx_avail : t -> int
val rx_peek_a : t -> int
val rx_peek_b : t -> int
val rx_peek_ts : t -> int
val rx_consume : t -> unit
(** Driver-side batched receive: check [rx_avail], peek, consume. *)

val irq_enabled : t -> bool

val enable_irq : t -> unit
(** Driver re-enables after a drain; if frames remain the device
    re-asserts, subject to ITR. *)

val disable_irq : t -> unit
(** Poll-mode driver masks the device permanently. *)

val irq_inflight : t -> bool
(** An assertion has been delivered to [on_irq] and the driver has not
    yet finished handling it ({!irq_done}). *)

val irq_done : t -> unit
(** Driver handler epilogue: the in-flight interrupt is handled. *)

val tx_push : t -> a:int -> b:int -> bool
(** Queue a completion on the TX ring; false = ring full, frame lost
    (recovery is the sender's retry, one layer up).  The ring drains
    at [nic_tx_cycles] per descriptor, invoking [on_tx]. *)

val stop : t -> unit
(** Disarm the ITR and TX timers so a drained simulator terminates. *)

(* Per-device stats (also mirrored on the obs counter set). *)
val rx_pkts : t -> int
val rx_drops : t -> int
val rx_overruns : t -> int
val irqs : t -> int
val irqs_lost : t -> int
val tx_pkts : t -> int
val tx_drops : t -> int
