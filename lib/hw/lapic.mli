(** Per-core local APIC timer.

    Nautilus programs the LAPIC directly (no kernel/user crossing, no
    timer-slack coalescing), so its timer interrupts land exactly at
    the programmed deadline plus the architectural dispatch cost.  The
    Linux model adds its own slack on top (see {!Iw_linuxsim}). *)

type t

val create : Iw_engine.Sim.t -> Platform.t -> Cpu.t -> t

val cpu : t -> Cpu.t

val oneshot :
  t ->
  delay:int ->
  handler:(preempted:int -> int) ->
  after:(unit -> unit) ->
  unit
(** Arm the timer to fire once, [delay] cycles from now.  Handler and
    [after] follow {!Cpu.interrupt} semantics; dispatch and return
    costs come from the platform cost table. *)

val periodic :
  t ->
  ?phase:int ->
  period:int ->
  handler:(preempted:int -> int) ->
  after:(unit -> unit) ->
  unit ->
  unit
(** Arm in periodic mode: interrupts every [period] cycles, starting
    [phase] (default [period]) from now, until {!stop}.  Ticks are injected on schedule
    even when the previous one is still queued (the queue then grows,
    just like a real APIC holding a pending vector). *)

val stop : t -> unit
(** Disarm; a pending oneshot is cancelled, a periodic stream stops. *)

val fired : t -> int
(** Number of interrupts injected so far. *)
