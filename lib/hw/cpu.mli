(** A simulated CPU core: a single execution slot with interrupts.

    A kernel model drives each core by issuing {e grants}: "run for
    [cycles], then call me back".  Interrupts injected with
    {!interrupt} preempt the current grant (unless it was issued
    uninterruptible), run a handler after the platform's dispatch
    cost, and then hand control back to the kernel, which decides
    whether to resume the preempted work or switch.

    Interrupts never nest: an interrupt arriving while a handler runs
    (or during an uninterruptible grant) is queued and delivered as
    soon as the core is interruptible again.  All costs are explicit
    cycles; the core keeps separate accounting of work, overhead, and
    interrupt cycles so experiments can report overhead percentages
    directly. *)

type t

type kind =
  | Work  (** Application/runtime useful work. *)
  | Overhead  (** Kernel bookkeeping: context switches, scheduling... *)

val create : ?obs:Iw_obs.Obs.t -> Iw_engine.Sim.t -> id:int -> t
(** [obs] defaults to the domain's ambient observability context; the
    core bumps its typed counters and, when tracing is enabled, emits
    work/overhead/irq spans on its own track. *)

val obs : t -> Iw_obs.Obs.t

val id : t -> int
val busy : t -> bool
val sim : t -> Iw_engine.Sim.t

val grant :
  t ->
  cycles:int ->
  kind:kind ->
  uninterruptible:bool ->
  on_complete:(unit -> unit) ->
  unit
(** Give the core to a computation for [cycles] cycles.  The core must
    be idle.  [on_complete] fires when the full quantum has elapsed
    without preemption; if an interrupt preempts the grant first,
    [on_complete] is dropped and the interrupt handler receives the
    remaining cycle count instead.  All arguments are required — the
    old optional [?kind]/[?uninterruptible] boxed a [Some] on every
    call, and granting is the hottest edge in the stack.  Zero-cycle
    grants complete via a same-time event (never synchronously),
    keeping the control stack flat. *)

val interrupt :
  t ->
  dispatch:int ->
  return_cost:int ->
  handler:(preempted:int -> int) ->
  after:(unit -> unit) ->
  unit
(** Inject an interrupt.  When the core becomes interruptible the
    sequence is: [dispatch] busy cycles; [handler ~preempted] runs
    (its return value is the handler's own cost in cycles;
    [preempted] is the remaining cycle count when a grant was cut
    short, or [-1] when the core was idle — an [int option] here
    would allocate on every preempting tick); [return_cost] busy
    cycles; then [after ()] with the core idle again.  Queued
    interrupts are delivered FIFO from a preallocated ring. *)

val pending_interrupts : t -> int

val work_cycles : t -> int
(** Total cycles granted as [Work] that actually elapsed. *)

val overhead_cycles : t -> int
(** Total cycles granted as [Overhead] that actually elapsed. *)

val irq_cycles : t -> int
(** Total cycles spent in dispatch + handler + return paths. *)

val reset_accounting : t -> unit
