(* Simulated NIC.

   One device per machine, living entirely in that machine's event
   context: flat-array descriptor rings in the PR 6 zero-allocation
   style (slots recycled in place, free-running head/tail, no boxing),
   an ITR moderation register enforced by a reusable one-shot timer,
   and IMS-style auto-mask interrupt assertion.  Nothing here draws
   from a workload RNG; the only nondeterminism source is the captured
   fault plan's own stream, so the device is deterministic under the
   fleet's conservative windows. *)

open Iw_engine
open Iw_obs
open Iw_faults

module Ring = struct
  type t = {
    buf : int array;  (* stride 3: payload a, payload b, enqueue ts *)
    mask : int;  (* capacity - 1; capacity is a power of two *)
    mutable head : int;  (* next slot to consume; free-running *)
    mutable tail : int;  (* next slot to fill; free-running *)
    mutable overruns : int;
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create cap =
    if cap <= 0 then invalid_arg "Nic.Ring.create: capacity <= 0";
    let cap = pow2 cap 1 in
    {
      buf = Array.make (cap * 3) 0;
      mask = cap - 1;
      head = 0;
      tail = 0;
      overruns = 0;
    }

  let capacity r = r.mask + 1
  let length r = r.tail - r.head
  let is_empty r = r.tail = r.head
  let is_full r = r.tail - r.head > r.mask

  let push r ~a ~b ~ts =
    if r.tail - r.head > r.mask then begin
      r.overruns <- r.overruns + 1;
      false
    end
    else begin
      let i = (r.tail land r.mask) * 3 in
      r.buf.(i) <- a;
      r.buf.(i + 1) <- b;
      r.buf.(i + 2) <- ts;
      r.tail <- r.tail + 1;
      true
    end

  let peek_a r =
    if is_empty r then invalid_arg "Nic.Ring.peek_a: empty";
    r.buf.((r.head land r.mask) * 3)

  let peek_b r =
    if is_empty r then invalid_arg "Nic.Ring.peek_b: empty";
    r.buf.(((r.head land r.mask) * 3) + 1)

  let peek_ts r =
    if is_empty r then invalid_arg "Nic.Ring.peek_ts: empty";
    r.buf.(((r.head land r.mask) * 3) + 2)

  let pop r =
    if is_empty r then invalid_arg "Nic.Ring.pop: empty";
    r.head <- r.head + 1

  let overruns r = r.overruns
end

type config = { nic_ring : int; nic_itr_cycles : int; nic_tx_cycles : int }

let default = { nic_ring = 256; nic_itr_cycles = 0; nic_tx_cycles = 120 }

type t = {
  sim : Sim.t;
  obs : Obs.t;
  plan : Plan.t;
  rx : Ring.t;
  tx : Ring.t;
  mutable itr_cycles : int;
  tx_cycles : int;
  mutable on_irq : unit -> unit;
  mutable on_tx : a:int -> b:int -> unit;
  mutable irq_enabled : bool;
  mutable irq_inflight : bool;
  mutable last_assert : int;
  itr_timer : Sim.timer;
  mutable itr_pending : bool;  (* deferred assertion armed *)
  mutable itr_cb : unit -> unit;  (* preallocated timer callback *)
  tx_timer : Sim.timer;
  mutable tx_busy : bool;  (* drain timer armed *)
  mutable tx_cb : unit -> unit;
  mutable rx_pkts : int;
  mutable rx_drops : int;
  mutable irqs : int;
  mutable irqs_lost : int;
  mutable tx_pkts : int;
  mutable tx_drops : int;
}

let assert_now t =
  let now = Sim.now t.sim in
  t.last_assert <- now;
  (* Auto-mask (IMS): the device stays quiet until the driver
     re-enables, no matter how many frames land meanwhile. *)
  t.irq_enabled <- false;
  if Plan.fire t.plan t.obs ~kind:Plan.Nic_irq_lost ~cpu:0 ~ts:now then
    (* The assertion vanished after the mask: the ring is stranded
       until a layer above notices.  [irq_inflight] stays false so the
       stranded state is exactly observable. *)
    t.irqs_lost <- t.irqs_lost + 1
  else begin
    t.irqs <- t.irqs + 1;
    Counter.incr t.obs.Obs.counters Counter.Nic_irqs;
    if t.obs.Obs.trace.Trace.enabled then
      Trace.instant t.obs.Obs.trace ~name:"nic:irq" ~cat:"nic" ~cpu:0 ~ts:now
        ();
    t.irq_inflight <- true;
    t.on_irq ()
  end

let maybe_assert t =
  if t.irq_enabled && (not t.itr_pending) && Ring.length t.rx > 0 then begin
    let now = Sim.now t.sim in
    let due = t.last_assert + t.itr_cycles in
    if t.itr_cycles = 0 || due <= now then assert_now t
    else begin
      (* ITR moderation: defer the assertion to the earliest cycle
         that honors the minimum gap.  One reusable timer, one armed
         deferral at a time — deterministic by construction. *)
      t.itr_pending <- true;
      Sim.arm t.sim t.itr_timer ~at:due t.itr_cb
    end
  end

let create ?obs ~sim cfg =
  if cfg.nic_itr_cycles < 0 then invalid_arg "Nic.create: itr < 0";
  if cfg.nic_tx_cycles <= 0 then invalid_arg "Nic.create: tx cost <= 0";
  let obs = match obs with Some o -> o | None -> Obs.ambient () in
  let t =
    {
      sim;
      obs;
      plan = Plan.ambient ();
      rx = Ring.create cfg.nic_ring;
      tx = Ring.create cfg.nic_ring;
      itr_cycles = cfg.nic_itr_cycles;
      tx_cycles = cfg.nic_tx_cycles;
      on_irq = ignore;
      on_tx = (fun ~a:_ ~b:_ -> ());
      irq_enabled = true;
      irq_inflight = false;
      (* Far enough in the past that the first assertion is never
         ITR-deferred. *)
      last_assert = -(max_int asr 1);
      itr_timer = Sim.timer sim;
      itr_pending = false;
      itr_cb = ignore;
      tx_timer = Sim.timer sim;
      tx_busy = false;
      tx_cb = ignore;
      rx_pkts = 0;
      rx_drops = 0;
      irqs = 0;
      irqs_lost = 0;
      tx_pkts = 0;
      tx_drops = 0;
    }
  in
  t.itr_cb <-
    (fun () ->
      t.itr_pending <- false;
      if t.irq_enabled && Ring.length t.rx > 0 then assert_now t);
  t.tx_cb <-
    (fun () ->
      let a = Ring.peek_a t.tx and b = Ring.peek_b t.tx in
      Ring.pop t.tx;
      t.tx_pkts <- t.tx_pkts + 1;
      Counter.incr t.obs.Obs.counters Counter.Nic_tx_pkts;
      t.on_tx ~a ~b;
      if Ring.length t.tx > 0 then
        Sim.arm t.sim t.tx_timer ~at:(Sim.now t.sim + t.tx_cycles) t.tx_cb
      else t.tx_busy <- false);
  t

let set_on_irq t f = t.on_irq <- f
let set_on_tx t f = t.on_tx <- f
let itr t = t.itr_cycles

let set_itr t v =
  if v < 0 then invalid_arg "Nic.set_itr: itr < 0";
  t.itr_cycles <- v

let drop t =
  t.rx_drops <- t.rx_drops + 1;
  Counter.incr t.obs.Obs.counters Counter.Nic_rx_drops;
  false

let rx_push t ~a ~b =
  let now = Sim.now t.sim in
  if Plan.fire t.plan t.obs ~kind:Plan.Nic_rx_drop ~cpu:0 ~ts:now then drop t
  else if
    (* An injected overrun short-circuits the push: the ring spuriously
       reported full, so the slot is never written. *)
    Plan.fire t.plan t.obs ~kind:Plan.Nic_ring_overrun ~cpu:0 ~ts:now
    || not (Ring.push t.rx ~a ~b ~ts:now)
  then drop t
  else begin
    t.rx_pkts <- t.rx_pkts + 1;
    Counter.incr t.obs.Obs.counters Counter.Nic_rx_pkts;
    maybe_assert t;
    true
  end

let rx_avail t = Ring.length t.rx
let rx_peek_a t = Ring.peek_a t.rx
let rx_peek_b t = Ring.peek_b t.rx
let rx_peek_ts t = Ring.peek_ts t.rx
let rx_consume t = Ring.pop t.rx
let irq_enabled t = t.irq_enabled

let enable_irq t =
  if not t.irq_enabled then begin
    t.irq_enabled <- true;
    maybe_assert t
  end

let disable_irq t = t.irq_enabled <- false
let irq_inflight t = t.irq_inflight
let irq_done t = t.irq_inflight <- false

let tx_push t ~a ~b =
  let now = Sim.now t.sim in
  if not (Ring.push t.tx ~a ~b ~ts:now) then begin
    t.tx_drops <- t.tx_drops + 1;
    false
  end
  else begin
    if not t.tx_busy then begin
      t.tx_busy <- true;
      Sim.arm t.sim t.tx_timer ~at:(now + t.tx_cycles) t.tx_cb
    end;
    true
  end

let stop t =
  Sim.disarm t.sim t.itr_timer;
  Sim.disarm t.sim t.tx_timer;
  t.itr_pending <- false;
  t.tx_busy <- false

let rx_pkts t = t.rx_pkts
let rx_drops t = t.rx_drops
let rx_overruns t = Ring.overruns t.rx
let irqs t = t.irqs
let irqs_lost t = t.irqs_lost
let tx_pkts t = t.tx_pkts
let tx_drops t = t.tx_drops
