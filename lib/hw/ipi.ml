open Iw_engine

let send s plat ~target ~handler ~after =
  let costs = plat.Platform.costs in
  Sim.schedule_after_unit s costs.ipi_latency (fun () ->
      Cpu.interrupt target ~dispatch:costs.interrupt_dispatch
        ~return_cost:costs.interrupt_return ~handler ~after)

let broadcast s plat ~targets ~handler ~after =
  List.iter
    (fun target ->
      let cid = Cpu.id target in
      send s plat ~target
        ~handler:(fun ~preempted -> handler cid ~preempted)
        ~after:(fun () -> after cid))
    targets
