open Iw_engine

let send s plat ~target ~handler ~after =
  let costs = plat.Platform.costs in
  let obs = Cpu.obs target in
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Ipi_sends;
  if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"ipi_send" ~cat:"hw"
      ~cpu:(-1) ~ts:(Sim.now s) ();
  Sim.schedule_after_unit s costs.ipi_latency (fun () ->
      if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
        Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"ipi_recv" ~cat:"hw"
          ~cpu:(Cpu.id target) ~ts:(Sim.now s) ();
      Cpu.interrupt target ~dispatch:costs.interrupt_dispatch
        ~return_cost:costs.interrupt_return ~handler ~after)

let broadcast s plat ~targets ~handler ~after =
  List.iter
    (fun target ->
      let cid = Cpu.id target in
      send s plat ~target
        ~handler:(fun ~preempted -> handler cid ~preempted)
        ~after:(fun () -> after cid))
    targets
