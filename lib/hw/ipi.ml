open Iw_engine

(* One delivery attempt: the wire latency, then the interrupt on the
   target core. *)
let deliver s costs ~target ~handler ~after ~latency =
  let obs = Cpu.obs target in
  Sim.schedule_after_unit s latency (fun () ->
      if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
        Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"ipi_recv" ~cat:"hw"
          ~cpu:(Cpu.id target) ~ts:(Sim.now s) ();
      Cpu.interrupt target ~dispatch:costs.Platform.interrupt_dispatch
        ~return_cost:costs.Platform.interrupt_return ~handler ~after)

let send s plat ~target ~handler ~after =
  let costs = plat.Platform.costs in
  let obs = Cpu.obs target in
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Ipi_sends;
  if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"ipi_send" ~cat:"hw"
      ~cpu:(-1) ~ts:(Sim.now s) ();
  let plan = Iw_faults.Plan.ambient () in
  if not (Iw_faults.Plan.enabled plan) then
    deliver s costs ~target ~handler ~after ~latency:costs.ipi_latency
  else begin
    (* The injection point is the wire itself: the sender has already
       paid its cost and counted the send; whether the message lands,
       lands late, or lands twice is the fault plan's call.  Kinds are
       queried in a fixed order so each kind's schedule is stable. *)
    let cpu = Cpu.id target and ts = Sim.now s in
    if Iw_faults.Plan.fire plan obs ~kind:Iw_faults.Plan.Ipi_drop ~cpu ~ts then
      ()
    else begin
      let latency =
        if Iw_faults.Plan.fire plan obs ~kind:Iw_faults.Plan.Ipi_delay ~cpu ~ts
        then costs.ipi_latency + Iw_faults.Plan.ipi_delay_cycles plan
        else costs.ipi_latency
      in
      deliver s costs ~target ~handler ~after ~latency;
      if Iw_faults.Plan.fire plan obs ~kind:Iw_faults.Plan.Ipi_dup ~cpu ~ts then
        deliver s costs ~target ~handler ~after
          ~latency:(latency + costs.ipi_latency)
    end
  end

let broadcast s plat ~targets ~handler ~after =
  List.iter
    (fun target ->
      let cid = Cpu.id target in
      send s plat ~target
        ~handler:(fun ~preempted -> handler cid ~preempted)
        ~after:(fun () -> after cid))
    targets
