open Iw_engine

(* Each [oneshot]/[periodic] call allocates one reusable Sim.timer for
   its stream; a periodic stream then re-arms that same record every
   tick through the O(1) timer wheel, instead of pushing a fresh heap
   event per tick.  Several streams may coexist on one LAPIC (e.g. a
   heartbeat driver installed on top of scheduler ticks); [armed]
   tracks the most recently re-armed one, and the generation counter
   quiesces the rest after [stop], exactly as before. *)

type t = {
  s : Sim.t;
  plat : Platform.t;
  target : Cpu.t;
  mutable armed : Sim.timer option;
  mutable generation : int;
  mutable fired : int;
}

let create s plat target = { s; plat; target; armed = None; generation = 0; fired = 0 }

let cpu t = t.target

let inject t handler after =
  t.fired <- t.fired + 1;
  let obs = Cpu.obs t.target in
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Timer_fires;
  if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"timer_fire" ~cat:"hw"
      ~cpu:(Cpu.id t.target) ~ts:(Sim.now t.s) ();
  Cpu.interrupt t.target ~dispatch:t.plat.Platform.costs.interrupt_dispatch
    ~return_cost:t.plat.Platform.costs.interrupt_return ~handler ~after

(* The fault plan sits between the armed timer and the interrupt it
   raises: a [Timer_miss] swallows the fire entirely (the stream stays
   armed — only this delivery is lost), [Timer_late] postpones it, and
   [Timer_spurious] raises an extra one.  Late deliveries re-check the
   generation so a [stop] still quiesces them. *)
let deliver t ~gen handler after =
  let plan = Iw_faults.Plan.ambient () in
  if not (Iw_faults.Plan.enabled plan) then inject t handler after
  else begin
    let obs = Cpu.obs t.target in
    let cpu = Cpu.id t.target and ts = Sim.now t.s in
    if Iw_faults.Plan.fire plan obs ~kind:Iw_faults.Plan.Timer_miss ~cpu ~ts
    then ()
    else begin
      (if Iw_faults.Plan.fire plan obs ~kind:Iw_faults.Plan.Timer_late ~cpu ~ts
       then
         Sim.schedule_after_unit t.s
           (Iw_faults.Plan.timer_late_cycles plan)
           (fun () -> if gen = t.generation then inject t handler after)
       else inject t handler after);
      if
        Iw_faults.Plan.fire plan obs ~kind:Iw_faults.Plan.Timer_spurious ~cpu
          ~ts
      then inject t handler after
    end
  end

let oneshot t ~delay ~handler ~after =
  if delay < 0 then invalid_arg "Lapic.oneshot: negative delay";
  let gen = t.generation in
  let tm = Sim.timer t.s in
  Sim.arm_after t.s tm delay (fun () ->
      if gen = t.generation then begin
        t.armed <- None;
        deliver t ~gen handler after
      end);
  t.armed <- Some tm

let periodic t ?phase ~period ~handler ~after () =
  if period <= 0 then invalid_arg "Lapic.periodic: period <= 0";
  let first = match phase with None -> period | Some p -> max 1 p in
  let gen = t.generation in
  let tm = Sim.timer t.s in
  (* Allocated once per stream: re-arming the same timer every tick
     must not box a fresh [Some]. *)
  let armed_tm = Some tm in
  let rec tick () =
    if gen = t.generation then begin
      deliver t ~gen handler after;
      Sim.arm_after t.s tm period tick;
      t.armed <- armed_tm
    end
  in
  Sim.arm_after t.s tm first tick;
  t.armed <- armed_tm

let stop t =
  t.generation <- t.generation + 1;
  Option.iter (Sim.disarm t.s) t.armed;
  t.armed <- None

let fired t = t.fired
