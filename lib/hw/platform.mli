(** Machine descriptions and hardware cost tables.

    All costs are in cycles.  The presets encode the magnitudes the
    paper and its companion papers report for the platforms they
    evaluate on (Xeon Phi KNL, a dual-socket Xeon server, an 8-socket
    big-iron box): an interrupt dispatch of roughly a thousand cycles,
    a Linux context switch with floating-point state of roughly five
    thousand, IPI latency far below signal-delivery latency, and so
    on.  Reproductions depend on these *ratios*, not on the absolute
    values. *)

type costs = {
  (* Interrupt path *)
  interrupt_dispatch : int;  (** IDT entry to first handler insn (§V-D: ~1000). *)
  interrupt_return : int;  (** iret path. *)
  pipeline_interrupt_dispatch : int;
      (** §V-D branch-injected delivery: like a predicted branch + MSR
          return. *)
  ipi_send : int;  (** LAPIC ICR write on the sender. *)
  ipi_latency : int;  (** Fabric flight time to the target core. *)
  timer_program : int;  (** LAPIC timer reprogram. *)
  (* Context/state movement *)
  ctx_save_int : int;  (** Integer register save. *)
  ctx_restore_int : int;
  fp_save : int;  (** Full vector/FP state save (AVX-512 on KNL is big). *)
  fp_restore : int;
  fiber_switch_base : int;
      (** Compiler-timed fiber switch: call + callee-saved regs + stack
          swap, no interrupt machinery (§IV-C). *)
  fiber_fp_save : int;
      (** Compiler-aware FP save: only live vector state. *)
  fiber_fp_restore : int;
  (* Scheduling *)
  sched_pick : int;  (** Per-core run-queue pick (Nautilus-like). *)
  sched_pick_rt : int;  (** Real-time (EDF-ish) admission+pick. *)
  cfs_pick : int;  (** Linux CFS pick: heavier, tree-based. *)
  (* Kernel/user boundary (Linux-like stacks only) *)
  kernel_entry : int;
      (** Syscall/trap entry incl. speculation mitigations. *)
  kernel_exit : int;
  signal_deliver : int;  (** Kernel-to-user signal frame setup. *)
  signal_return : int;  (** sigreturn. *)
  futex_wake : int;
  futex_wait : int;
  (* Thread lifecycle *)
  thread_create : int;  (** Nautilus-like in-kernel thread creation. *)
  thread_create_user : int;  (** Linux user-level (clone + libc). *)
  thread_exit : int;
  (* Memory system *)
  tlb_miss_walk : int;  (** Page-table walk on a TLB miss. *)
  page_fault : int;  (** Minor fault service cost. *)
  cache_line_local : int;  (** L1 hit. *)
  cache_line_remote : int;  (** Line transfer across the interconnect. *)
  atomic_rmw : int;  (** Uncontended atomic read-modify-write. *)
  (* Timer tick and timing-event paths (hoisted from per-module magic
     numbers so experiments can sweep them). *)
  tick_update : int;
      (** Lightweight per-tick bookkeeping a Nautilus-style kernel does
          on each timer tick (§IV-B: a specialized kernel's tick is a
          couple hundred cycles, not thousands). *)
  tick_accounting_extra : int;
      (** Extra accounting a general-purpose (Linux-like) tick carries:
          cputime accounting, RCU callbacks, load tracking.  A Linux
          tick is [tick_update + tick_accounting_extra]. *)
  timer_path_direct : int;
      (** Timer expiry dispatched directly from the interrupt handler
          (kernel-mode callbacks, §IV-B). *)
  timer_path_softirq : int;
      (** Timer expiry deferred through a softirq-style bottom half
          before user delivery — the Linux hrtimer→signal path the
          paper's §V-B timing measurements have to cross. *)
  timing_check : int;
      (** One compiler-inserted timing check (polling branch) in
          compiler-timed fibers (§IV-C: tens of cycles). *)
  callback_indirect : int;
      (** Indirect-call overhead of invoking a registered timing
          callback from the runtime (function-pointer dispatch). *)
}

type t = {
  name : string;
  cores : int;
  sockets : int;
  cores_per_socket : int;
  ghz : float;
  tlb_entries : int;
  page_size_kb : int;  (** Base (small) page size used by demand paging. *)
  large_page_size_kb : int;  (** Identity-mapping page size (Nautilus). *)
  costs : costs;
}

val default_costs : costs
(** Commodity-server cost table; presets override fields from here. *)

val knl : t
(** Xeon-Phi-KNL-like: 64 slow cores at 1.3 GHz, expensive (512-bit)
    FP state. *)

val server_2x12 : t
(** Dual-socket 3.3 GHz 12-core server (§V-B evaluation machine). *)

val bigiron_8x24 : t
(** 8-socket, 192-core machine (§V-A repetition study). *)

val riscv_openpiton : t
(** OpenPiton/Ariane-flavored RISC-V machine (§V-F): the open-hardware
    target the interweaving agenda wants for hardware-level
    experiments.  Cheap trap path, slow clock. *)

val small : t
(** 4-core toy machine for unit tests. *)

val with_cores : t -> int -> t
(** Same platform restricted/expanded to [n] cores (keeps socket
    geometry proportional). *)

val cycles_of_us : t -> float -> int
val us_of_cycles : t -> int -> float
val pp : Format.formatter -> t -> unit
