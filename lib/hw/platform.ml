type costs = {
  interrupt_dispatch : int;
  interrupt_return : int;
  pipeline_interrupt_dispatch : int;
  ipi_send : int;
  ipi_latency : int;
  timer_program : int;
  ctx_save_int : int;
  ctx_restore_int : int;
  fp_save : int;
  fp_restore : int;
  fiber_switch_base : int;
  fiber_fp_save : int;
  fiber_fp_restore : int;
  sched_pick : int;
  sched_pick_rt : int;
  cfs_pick : int;
  kernel_entry : int;
  kernel_exit : int;
  signal_deliver : int;
  signal_return : int;
  futex_wake : int;
  futex_wait : int;
  thread_create : int;
  thread_create_user : int;
  thread_exit : int;
  tlb_miss_walk : int;
  page_fault : int;
  cache_line_local : int;
  cache_line_remote : int;
  atomic_rmw : int;
  tick_update : int;
  tick_accounting_extra : int;
  timer_path_direct : int;
  timer_path_softirq : int;
  timing_check : int;
  callback_indirect : int;
}

type t = {
  name : string;
  cores : int;
  sockets : int;
  cores_per_socket : int;
  ghz : float;
  tlb_entries : int;
  page_size_kb : int;
  large_page_size_kb : int;
  costs : costs;
}

let default_costs =
  {
    interrupt_dispatch = 1000;
    interrupt_return = 250;
    pipeline_interrupt_dispatch = 8;
    ipi_send = 120;
    ipi_latency = 500;
    timer_program = 60;
    ctx_save_int = 150;
    ctx_restore_int = 150;
    fp_save = 400;
    fp_restore = 400;
    fiber_switch_base = 380;
    fiber_fp_save = 300;
    fiber_fp_restore = 300;
    sched_pick = 120;
    sched_pick_rt = 220;
    cfs_pick = 420;
    kernel_entry = 650;
    kernel_exit = 650;
    signal_deliver = 2800;
    signal_return = 1800;
    futex_wake = 900;
    futex_wait = 1100;
    thread_create = 1800;
    thread_create_user = 28000;
    thread_exit = 600;
    tlb_miss_walk = 60;
    page_fault = 4500;
    cache_line_local = 4;
    cache_line_remote = 180;
    atomic_rmw = 24;
    tick_update = 120;
    tick_accounting_extra = 280;
    timer_path_direct = 80;
    timer_path_softirq = 1200;
    timing_check = 40;
    callback_indirect = 20;
  }

let knl =
  {
    name = "phi-knl";
    cores = 64;
    sockets = 1;
    cores_per_socket = 64;
    ghz = 1.3;
    tlb_entries = 256;
    page_size_kb = 4;
    large_page_size_kb = 2048;
    costs =
      {
        default_costs with
        (* 512-bit vector state makes FP context movement dominate. *)
        fp_save = 600;
        fp_restore = 600;
        fiber_fp_save = 450;
        fiber_fp_restore = 450;
        cache_line_remote = 230;
      };
  }

let server_2x12 =
  {
    name = "server-2x12";
    cores = 24;
    sockets = 2;
    cores_per_socket = 12;
    ghz = 3.3;
    tlb_entries = 1536;
    page_size_kb = 4;
    large_page_size_kb = 1024;
    costs = default_costs;
  }

let bigiron_8x24 =
  {
    name = "bigiron-8x24";
    cores = 192;
    sockets = 8;
    cores_per_socket = 24;
    ghz = 2.1;
    tlb_entries = 1536;
    page_size_kb = 4;
    large_page_size_kb = 1024;
    costs = { default_costs with ipi_latency = 700; cache_line_remote = 320 };
  }

(* SecV-F: an OpenPiton/Ariane-flavored RISC-V target.  Simpler
   in-order cores: slower clock, but a shallower pipeline makes the
   trap path far cheaper than x64's — which is exactly why the paper
   wants open hardware to experiment on. *)
let riscv_openpiton =
  {
    name = "riscv-openpiton";
    cores = 16;
    sockets = 1;
    cores_per_socket = 16;
    ghz = 0.8;
    tlb_entries = 64;
    page_size_kb = 4;
    large_page_size_kb = 2048;
    costs =
      {
        default_costs with
        interrupt_dispatch = 320;
        interrupt_return = 90;
        pipeline_interrupt_dispatch = 4;
        fp_save = 180;
        fp_restore = 180;
        fiber_fp_save = 140;
        fiber_fp_restore = 140;
        cache_line_remote = 140;
      };
  }

let small =
  {
    name = "small-4";
    cores = 4;
    sockets = 1;
    cores_per_socket = 4;
    ghz = 1.0;
    tlb_entries = 64;
    page_size_kb = 4;
    large_page_size_kb = 2048;
    costs = default_costs;
  }

let with_cores t n =
  if n <= 0 then invalid_arg "Platform.with_cores: n <= 0";
  let sockets = max 1 (min t.sockets ((n + t.cores_per_socket - 1) / t.cores_per_socket)) in
  { t with cores = n; sockets; cores_per_socket = (n + sockets - 1) / sockets }

let cycles_of_us t us = Iw_engine.Units.cycles_of_us ~ghz:t.ghz us
let us_of_cycles t c = Iw_engine.Units.us_of_cycles ~ghz:t.ghz c

let pp ppf t =
  Format.fprintf ppf "%s: %d cores (%d sockets), %.1f GHz" t.name t.cores
    t.sockets t.ghz
