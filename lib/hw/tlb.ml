type t = { entries : int; page_kb : int }

type profile = { footprint_kb : int; accesses : int; locality : float }

let create plat ~page_kb =
  if page_kb <= 0 then invalid_arg "Tlb.create: page_kb <= 0";
  { entries = plat.Platform.tlb_entries; page_kb }

let reach_kb t = t.entries * t.page_kb

let misses t p =
  if p.footprint_kb <= reach_kb t then 0
  else begin
    let uncovered =
      float_of_int (p.footprint_kb - reach_kb t) /. float_of_int p.footprint_kb
    in
    let cold_accesses = float_of_int p.accesses *. (1.0 -. p.locality) in
    int_of_float (cold_accesses *. uncovered)
  end

let first_touch_faults t p = (p.footprint_kb + t.page_kb - 1) / t.page_kb

let access_overhead_cycles ?obs t plat p ~demand_paged =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.ambient () in
  let costs = plat.Platform.costs in
  let nmisses = misses t p in
  let miss_cost = nmisses * costs.tlb_miss_walk in
  Iw_obs.Counter.add obs.Iw_obs.Obs.counters Iw_obs.Counter.Tlb_misses nmisses;
  let fault_cost =
    if demand_paged then begin
      let nfaults = first_touch_faults t p in
      Iw_obs.Counter.add obs.Iw_obs.Obs.counters Iw_obs.Counter.Page_faults
        nfaults;
      nfaults * costs.page_fault
    end
    else 0
  in
  (* Spurious remote shootdowns: each one costs an interrupt round
     trip plus the walk to refill the flushed entry.  The phase is
     charged analytically, so the fault count is drawn in bulk —
     expected rate * accesses with O(1) draws. *)
  let plan = Iw_faults.Plan.ambient () in
  let shoot_cost =
    if not (Iw_faults.Plan.enabled plan) then 0
    else begin
      let n =
        Iw_faults.Plan.count plan obs ~kind:Iw_faults.Plan.Tlb_shootdown
          ~opportunities:p.accesses ~cpu:(-1) ~ts:0
      in
      n * (costs.interrupt_dispatch + costs.interrupt_return + costs.tlb_miss_walk)
    end
  in
  miss_cost + fault_cost + shoot_cost
