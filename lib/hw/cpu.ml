open Iw_engine

type kind = Work | Overhead

type grant_rec = {
  total : int;
  started : int;
  stall : int;  (* injected dark cycles appended to this grant *)
  g_kind : kind;
  uninterruptible : bool;
  on_complete : unit -> unit;
}

type irq = {
  dispatch : int;
  return_cost : int;
  handler : preempted:int option -> int;
  after : unit -> unit;
}

type state = Idle | Granted of grant_rec | In_irq

type t = {
  cpu_id : int;
  s : Sim.t;
  obs : Iw_obs.Obs.t;
  mutable state : state;
  pending : irq Queue.t;
  completion : Sim.timer; (* at most one grant is outstanding per core *)
  mutable work : int;
  mutable overhead : int;
  mutable irq_time : int;
}

let create ?obs s ~id =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  {
    cpu_id = id;
    s;
    obs;
    state = Idle;
    pending = Queue.create ();
    completion = Sim.timer s;
    work = 0;
    overhead = 0;
    irq_time = 0;
  }

let id t = t.cpu_id
let sim t = t.s
let obs t = t.obs
let busy t = match t.state with Idle -> false | Granted _ | In_irq -> true
let pending_interrupts t = Queue.length t.pending
let work_cycles t = t.work
let overhead_cycles t = t.overhead
let irq_cycles t = t.irq_time

let reset_accounting t =
  t.work <- 0;
  t.overhead <- 0;
  t.irq_time <- 0

let account t kind cycles =
  match kind with
  | Work -> t.work <- t.work + cycles
  | Overhead -> t.overhead <- t.overhead + cycles

(* Trace a completed (or cut-short) stretch of granted execution.
   Guarded on the enabled flag so the untraced path is a load+branch. *)
let trace_span_at t name cat ~ts ~dur =
  if t.obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled && dur > 0 then
    Iw_obs.Trace.span t.obs.Iw_obs.Obs.trace ~name ~cat ~cpu:t.cpu_id ~ts ~dur
      ()

let grant_name = function Work -> "work" | Overhead -> "overhead"

(* Record a delivered interrupt: bump the typed counter always, emit
   the span only when tracing. *)
let trace_irq t total =
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Irq_dispatches;
  if t.obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
    Iw_obs.Trace.span t.obs.Iw_obs.Obs.trace ~name:"irq" ~cat:"hw"
      ~cpu:t.cpu_id
      ~ts:(Sim.now t.s - total)
      ~dur:total ()

(* Deliver the next queued interrupt if the core is interruptible.
   Mutually recursive with grant completion: draining continues until
   the queue is empty or the core becomes un-preemptible. *)
let rec try_deliver t =
  let interruptible =
    match t.state with
    | In_irq -> false
    | Granted g -> not g.uninterruptible
    | Idle -> true
  in
  if interruptible && not (Queue.is_empty t.pending) then begin
    let irq = Queue.pop t.pending in
    let preempted =
      match t.state with
      | Granted g ->
          Sim.disarm t.s t.completion;
          let consumed = Sim.now t.s - g.started in
          (* An injected stall sits at the end of the armed window:
             whatever ran past [total] was the core being dark, not
             useful execution — it is neither owed back nor counted as
             the grant's kind. *)
          let work_part = min consumed g.total in
          let stall_part = consumed - work_part in
          account t g.g_kind work_part;
          if stall_part > 0 then account t Overhead stall_part;
          trace_span_at t (grant_name g.g_kind) "hw" ~ts:g.started
            ~dur:work_part;
          if stall_part > 0 then
            trace_span_at t "stall" "fault"
              ~ts:(g.started + work_part)
              ~dur:stall_part;
          Some (max 0 (g.total - work_part))
      | Idle | In_irq -> None
    in
    t.state <- In_irq;
    Sim.schedule_after_unit t.s irq.dispatch (fun () ->
        let handler_cost = irq.handler ~preempted in
        if handler_cost < 0 then
          invalid_arg "Cpu.interrupt: handler returned negative cost";
        Sim.schedule_after_unit t.s
          (handler_cost + irq.return_cost)
          (fun () ->
            let total = irq.dispatch + handler_cost + irq.return_cost in
            t.irq_time <- t.irq_time + total;
            trace_irq t total;
            t.state <- Idle;
            irq.after ();
            try_deliver t))
  end

let grant t ~cycles ?(kind = Work) ?(uninterruptible = false) ~on_complete () =
  if cycles < 0 then invalid_arg "Cpu.grant: negative cycles";
  (match t.state with
  | Idle -> ()
  | Granted _ | In_irq ->
      invalid_arg
        (Printf.sprintf "Cpu.grant: core %d is busy" t.cpu_id));
  let started = Sim.now t.s in
  (* Transient-stall injection: the core goes dark for [stall] extra
     cycles at the end of this grant.  The dark time is charged as
     overhead, never as work — the layers above see the slice take
     longer and must absorb it (heartbeat promotion lands late, the
     dynamic scheduler hands the next chunk elsewhere). *)
  let plan = Iw_faults.Plan.ambient () in
  let stall =
    if
      Iw_faults.Plan.enabled plan
      && Iw_faults.Plan.fire plan t.obs ~kind:Iw_faults.Plan.Cpu_stall
           ~cpu:t.cpu_id ~ts:started
    then Iw_faults.Plan.stall_cycles plan
    else 0
  in
  let g =
    { total = cycles; started; stall; g_kind = kind; uninterruptible;
      on_complete }
  in
  Sim.arm_after t.s t.completion (cycles + stall) (fun () ->
      let now = Sim.now t.s in
      account t g.g_kind g.total;
      trace_span_at t (grant_name g.g_kind) "hw"
        ~ts:(now - g.stall - g.total)
        ~dur:g.total;
      if g.stall > 0 then begin
        account t Overhead g.stall;
        trace_span_at t "stall" "fault" ~ts:(now - g.stall) ~dur:g.stall
      end;
      t.state <- Idle;
      g.on_complete ();
      try_deliver t);
  t.state <- Granted g

let interrupt t ~dispatch ~return_cost ~handler ~after =
  if dispatch < 0 || return_cost < 0 then
    invalid_arg "Cpu.interrupt: negative cost";
  Queue.push { dispatch; return_cost; handler; after } t.pending;
  try_deliver t
