open Iw_engine

type kind = Work | Overhead

type state = Idle | Granted | In_irq

let nop () = ()
let nop_handler ~preempted:_ = 0

(* At most one grant is outstanding per core, so the grant record is a
   set of mutable fields reused across grants and the completion
   callback is allocated once per core; pending interrupts live in a
   ring of parallel arrays and the two delivery stages run through
   per-core preallocated callbacks over scratch fields (at most one
   delivery is in flight: the core stays [In_irq] until it returns).
   Steady-state granting and interrupt delivery allocate nothing. *)
type t = {
  cpu_id : int;
  s : Sim.t;
  obs : Iw_obs.Obs.t;
  mutable state : state;
  (* Pending-interrupt ring (FIFO), doubled when full. *)
  mutable iq_dispatch : int array;
  mutable iq_return : int array;
  mutable iq_handler : (preempted:int -> int) array;
  mutable iq_after : (unit -> unit) array;
  mutable iq_head : int;
  mutable iq_n : int;
  (* In-flight delivery scratch; valid while [state = In_irq]. *)
  mutable d_dispatch : int;
  mutable d_return : int;
  mutable d_handler : preempted:int -> int;
  mutable d_after : unit -> unit;
  mutable d_preempted : int;
  mutable d_cost : int;
  mutable handler_cb : unit -> unit;
  mutable finish_cb : unit -> unit;
  completion : Sim.timer;
  mutable g_total : int;
  mutable g_started : int;
  mutable g_stall : int; (* injected dark cycles appended to this grant *)
  mutable g_kind : kind;
  mutable g_unint : bool;
  mutable g_done : unit -> unit;
  mutable complete_cb : unit -> unit;
  mutable work : int;
  mutable overhead : int;
  mutable irq_time : int;
}

let id t = t.cpu_id
let sim t = t.s
let obs t = t.obs
let busy t = match t.state with Idle -> false | Granted | In_irq -> true
let pending_interrupts t = t.iq_n
let work_cycles t = t.work
let overhead_cycles t = t.overhead
let irq_cycles t = t.irq_time

let reset_accounting t =
  t.work <- 0;
  t.overhead <- 0;
  t.irq_time <- 0

let account t kind cycles =
  match kind with
  | Work -> t.work <- t.work + cycles
  | Overhead -> t.overhead <- t.overhead + cycles

(* Trace a completed (or cut-short) stretch of granted execution.
   Guarded on the enabled flag so the untraced path is a load+branch. *)
let trace_span_at t name cat ~ts ~dur =
  if t.obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled && dur > 0 then
    Iw_obs.Trace.span t.obs.Iw_obs.Obs.trace ~name ~cat ~cpu:t.cpu_id ~ts ~dur
      ()

let grant_name = function Work -> "work" | Overhead -> "overhead"

(* Record a delivered interrupt: bump the typed counter always, emit
   the span only when tracing. *)
let trace_irq t total =
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Irq_dispatches;
  if t.obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
    Iw_obs.Trace.span t.obs.Iw_obs.Obs.trace ~name:"irq" ~cat:"hw"
      ~cpu:t.cpu_id
      ~ts:(Sim.now t.s - total)
      ~dur:total ()

(* Deliver the next queued interrupt if the core is interruptible.
   Mutually recursive with grant completion: draining continues until
   the queue is empty or the core becomes un-preemptible. *)
let try_deliver t =
  let interruptible =
    match t.state with
    | In_irq -> false
    | Granted -> not t.g_unint
    | Idle -> true
  in
  if interruptible && t.iq_n > 0 then begin
    let cap = Array.length t.iq_dispatch in
    let h = t.iq_head in
    t.d_dispatch <- t.iq_dispatch.(h);
    t.d_return <- t.iq_return.(h);
    t.d_handler <- t.iq_handler.(h);
    t.d_after <- t.iq_after.(h);
    t.iq_handler.(h) <- nop_handler;
    t.iq_after.(h) <- nop;
    t.iq_head <- (h + 1) mod cap;
    t.iq_n <- t.iq_n - 1;
    (match t.state with
    | Granted ->
        Sim.disarm t.s t.completion;
        let consumed = Sim.now t.s - t.g_started in
        (* An injected stall sits at the end of the armed window:
           whatever ran past [total] was the core being dark, not
           useful execution — it is neither owed back nor counted as
           the grant's kind. *)
        let work_part = min consumed t.g_total in
        let stall_part = consumed - work_part in
        account t t.g_kind work_part;
        if stall_part > 0 then account t Overhead stall_part;
        trace_span_at t (grant_name t.g_kind) "hw" ~ts:t.g_started
          ~dur:work_part;
        if stall_part > 0 then
          trace_span_at t "stall" "fault"
            ~ts:(t.g_started + work_part)
            ~dur:stall_part;
        t.g_done <- nop;
        t.d_preempted <- max 0 (t.g_total - work_part)
    | Idle | In_irq -> t.d_preempted <- -1);
    t.state <- In_irq;
    Sim.schedule_after_unit t.s t.d_dispatch t.handler_cb
  end

let create ?obs s ~id =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  let t =
    {
      cpu_id = id;
      s;
      obs;
      state = Idle;
      iq_dispatch = Array.make 4 0;
      iq_return = Array.make 4 0;
      iq_handler = Array.make 4 nop_handler;
      iq_after = Array.make 4 nop;
      iq_head = 0;
      iq_n = 0;
      d_dispatch = 0;
      d_return = 0;
      d_handler = nop_handler;
      d_after = nop;
      d_preempted = -1;
      d_cost = 0;
      handler_cb = nop;
      finish_cb = nop;
      completion = Sim.timer s;
      g_total = 0;
      g_started = 0;
      g_stall = 0;
      g_kind = Work;
      g_unint = false;
      g_done = nop;
      complete_cb = nop;
      work = 0;
      overhead = 0;
      irq_time = 0;
    }
  in
  t.complete_cb <-
    (fun () ->
      let now = Sim.now t.s in
      account t t.g_kind t.g_total;
      trace_span_at t (grant_name t.g_kind) "hw"
        ~ts:(now - t.g_stall - t.g_total)
        ~dur:t.g_total;
      if t.g_stall > 0 then begin
        account t Overhead t.g_stall;
        trace_span_at t "stall" "fault" ~ts:(now - t.g_stall) ~dur:t.g_stall
      end;
      t.state <- Idle;
      let f = t.g_done in
      t.g_done <- nop;
      f ();
      try_deliver t);
  t.handler_cb <-
    (fun () ->
      let handler_cost = t.d_handler ~preempted:t.d_preempted in
      if handler_cost < 0 then
        invalid_arg "Cpu.interrupt: handler returned negative cost";
      t.d_cost <- handler_cost;
      Sim.schedule_after_unit t.s (handler_cost + t.d_return) t.finish_cb);
  t.finish_cb <-
    (fun () ->
      let total = t.d_dispatch + t.d_cost + t.d_return in
      t.irq_time <- t.irq_time + total;
      trace_irq t total;
      t.state <- Idle;
      let after = t.d_after in
      t.d_after <- nop;
      t.d_handler <- nop_handler;
      after ();
      try_deliver t);
  t

let grant t ~cycles ~kind ~uninterruptible ~on_complete =
  if cycles < 0 then invalid_arg "Cpu.grant: negative cycles";
  (match t.state with
  | Idle -> ()
  | Granted | In_irq ->
      invalid_arg
        (Printf.sprintf "Cpu.grant: core %d is busy" t.cpu_id));
  let started = Sim.now t.s in
  (* Transient-stall injection: the core goes dark for [stall] extra
     cycles at the end of this grant.  The dark time is charged as
     overhead, never as work — the layers above see the slice take
     longer and must absorb it (heartbeat promotion lands late, the
     dynamic scheduler hands the next chunk elsewhere). *)
  let plan = Iw_faults.Plan.ambient () in
  let stall =
    if
      Iw_faults.Plan.enabled plan
      && Iw_faults.Plan.fire plan t.obs ~kind:Iw_faults.Plan.Cpu_stall
           ~cpu:t.cpu_id ~ts:started
    then Iw_faults.Plan.stall_cycles plan
    else 0
  in
  t.g_total <- cycles;
  t.g_started <- started;
  t.g_stall <- stall;
  t.g_kind <- kind;
  t.g_unint <- uninterruptible;
  t.g_done <- on_complete;
  Sim.arm_after t.s t.completion (cycles + stall) t.complete_cb;
  t.state <- Granted

let grow_ring t =
  let cap = Array.length t.iq_dispatch in
  let ncap = 2 * cap in
  let nd = Array.make ncap 0
  and nr = Array.make ncap 0
  and nh = Array.make ncap nop_handler
  and na = Array.make ncap nop in
  for i = 0 to t.iq_n - 1 do
    let j = (t.iq_head + i) mod cap in
    nd.(i) <- t.iq_dispatch.(j);
    nr.(i) <- t.iq_return.(j);
    nh.(i) <- t.iq_handler.(j);
    na.(i) <- t.iq_after.(j)
  done;
  t.iq_dispatch <- nd;
  t.iq_return <- nr;
  t.iq_handler <- nh;
  t.iq_after <- na;
  t.iq_head <- 0

let interrupt t ~dispatch ~return_cost ~handler ~after =
  if dispatch < 0 || return_cost < 0 then
    invalid_arg "Cpu.interrupt: negative cost";
  if t.iq_n = Array.length t.iq_dispatch then grow_ring t;
  let cap = Array.length t.iq_dispatch in
  let i = (t.iq_head + t.iq_n) mod cap in
  t.iq_dispatch.(i) <- dispatch;
  t.iq_return.(i) <- return_cost;
  t.iq_handler.(i) <- handler;
  t.iq_after.(i) <- after;
  t.iq_n <- t.iq_n + 1;
  try_deliver t
