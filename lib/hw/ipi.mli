(** Inter-processor interrupts.

    The sender pays [ipi_send] cycles (accounted by the caller, since
    it happens inside whatever grant is running); after [ipi_latency]
    the interrupt is injected on the target core with the full
    architectural dispatch cost. *)

val send :
  Iw_engine.Sim.t ->
  Platform.t ->
  target:Cpu.t ->
  handler:(preempted:int -> int) ->
  after:(unit -> unit) ->
  unit
(** Deliver a single IPI to [target]. *)

val broadcast :
  Iw_engine.Sim.t ->
  Platform.t ->
  targets:Cpu.t list ->
  handler:(int -> preempted:int -> int) ->
  after:(int -> unit) ->
  unit
(** One ICR broadcast: every target receives the interrupt after the
    same fabric latency.  [handler] and [after] receive the target
    core id.  This is the §IV-B Nautilus heartbeat mechanism: one
    LAPIC timer tick on CPU 0 fans out to all workers at once. *)
